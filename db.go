package pdtstore

// Durable store lifecycle: Open(dir) either bootstraps a fresh store
// directory or recovers one — load the MANIFEST's segment generation as the
// stable image, replay the WAL tail past the manifest's LSN, and resume the
// commit clock — and DB.Checkpoint makes the online checkpoint durable:
//
//	stream image  →  fsync segment  →  swap MANIFEST  →  truncate WAL
//
// The manifest swap (an atomic rename) is the commit point. A crash anywhere
// in that sequence recovers exactly the committed state: before the swap the
// old manifest still pairs the old segment with the full log; after it the
// new manifest's LSN tells recovery which log records the new image already
// contains, so the untruncated tail cannot double-apply.
//
// Directory layout:
//
//	dir/
//	  MANIFEST                  current generation + segment + freeze LSN
//	  seg-<generation>.seg      stable image segments (one live, rest GC'd)
//	  wal/<seq>.wal             rotated commit log files

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"pdtstore/internal/colstore"
	"pdtstore/internal/pdt"
	"pdtstore/internal/storage"
	"pdtstore/internal/table"
	"pdtstore/internal/txn"
	"pdtstore/internal/types"
	"pdtstore/internal/wal"
)

// Options configures Open.
type Options struct {
	// Schema is required when creating a new store directory; for an existing
	// one it is optional and validated against the segment's schema.
	Schema *types.Schema
	// BlockRows is the per-column block size of checkpointed images (0 =
	// colstore default).
	BlockRows int
	// Compressed selects compressed stable blocks.
	Compressed bool
	// Fanout is the PDT fanout (0 = paper default).
	Fanout int
	// WriteBudget caps the Write-PDT before background Write→Read folds
	// (0 = transaction-manager default).
	WriteBudget uint64
	// MaxCommitBatch caps how many concurrent commits one group-commit
	// flush folds into a single WAL append and fsync (0 = transaction-
	// manager default of 128; 1 makes every commit pay its own fsync).
	MaxCommitBatch int
	// MaxCommitDelay, when positive, lets the group-commit leader wait that
	// long for more commits to join a non-full batch. Zero (the default)
	// relies on natural batching: whatever arrives during the previous
	// fsync flushes together.
	MaxCommitDelay time.Duration
	// Device shares a buffer pool across stores; nil creates a private one.
	Device *colstore.Device
}

// DB is a durable, transactional PDT store rooted at a directory.
type DB struct {
	mu     sync.Mutex // serializes Checkpoint and Close
	dir    string
	lock   *os.File // exclusive flock on dir/LOCK for the DB's lifetime
	opts   Options
	schema *types.Schema
	dev    *colstore.Device
	tbl    *table.Table
	mgr    *txn.Manager
	log    *wal.FileLog
	man    storage.Manifest
	// nextGen is the highest generation number ever handed to a checkpoint,
	// advanced even when the checkpoint fails: a failed attempt may have
	// installed its segment as the manager's live store (only the manifest
	// write failed), so a retry must never reuse — and O_TRUNC — that name.
	nextGen uint64
	// retired tracks superseded file-backed images. The transaction manager
	// closes each one as soon as its last pinned reader finishes
	// (txn.releaseVersionLocked); this list is the backstop that closes
	// whatever is still pinned when the DB itself closes (Close is
	// idempotent, so the two paths may both run).
	retired []*colstore.Store
	closed  bool

	// fault, when set (crash tests only), is invoked at named points of the
	// checkpoint sequence; a non-nil return simulates the process dying there
	// (the step and everything after it never run).
	fault func(point string) error
}

// Checkpoint fault-injection points, in execution order.
const (
	faultMidSegmentWrite     = "mid-segment-write"
	faultPreManifestSwap     = "pre-manifest-swap"
	faultPostSwapPreTruncate = "post-swap-pre-truncate"
)

func segmentName(gen uint64) string { return fmt.Sprintf("seg-%016x.seg", gen) }

// Open opens or creates a durable store at dir and recovers its committed
// state: the manifest's segment generation becomes the stable image (blocks
// pread lazily through the buffer pool), the WAL tail beyond the manifest's
// LSN is replayed into the Write-PDT, and the commit clock resumes the
// pre-crash sequence. A torn final WAL record (crash mid-append) is truncated
// away; every earlier record is applied exactly once.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			unlockDir(lock)
		}
	}()
	dev := opts.Device
	if dev == nil {
		dev = colstore.NewDevice()
	}
	man, found, err := storage.LoadManifest(dir)
	if err != nil {
		return nil, err
	}
	var store *colstore.Store
	if found {
		seg, err := storage.OpenSegment(filepath.Join(dir, man.Segment))
		if err != nil {
			return nil, fmt.Errorf("pdtstore: open segment generation %d: %w", man.Generation, err)
		}
		if opts.Schema != nil && !schemaEqual(opts.Schema, seg.Schema()) {
			seg.Close()
			return nil, fmt.Errorf("pdtstore: schema mismatch: store holds %v", seg.Schema())
		}
		store = colstore.FromSegment(seg, dev)
	} else {
		if opts.Schema == nil {
			return nil, fmt.Errorf("pdtstore: creating a new store at %s requires Options.Schema", dir)
		}
		// Bootstrap: generation 1 is an empty, durable image. If the process
		// dies between segment and manifest, the next Open simply bootstraps
		// again over the stray file.
		name := segmentName(1)
		b, err := colstore.NewFileBuilder(opts.Schema, dev, opts.BlockRows, opts.Compressed, filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		store, err = b.Finish()
		if err != nil {
			return nil, err
		}
		man = storage.Manifest{Generation: 1, Segment: name, LSN: 0}
		if err := storage.WriteManifest(dir, man); err != nil {
			store.Close()
			return nil, err
		}
	}
	gcStraySegments(dir, man.Segment)

	tbl, err := table.FromStore(store, table.Options{
		Mode:       table.ModePDT,
		BlockRows:  opts.BlockRows,
		Compressed: opts.Compressed,
		Fanout:     opts.Fanout,
		Device:     dev,
	})
	if err != nil {
		store.Close()
		return nil, err
	}
	flog, records, err := wal.OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		store.Close()
		return nil, err
	}
	// The clock must sit at the max of the manifest's freeze LSN and the last
	// log record: a fully truncated log must not rewind it below the
	// checkpoint, or post-recovery commits would reuse spent LSNs.
	if man.LSN > flog.LSN() {
		flog.SetLSN(man.LSN)
	}
	mgr, err := txn.NewManager(tbl, txn.Options{
		WriteBudget:    opts.WriteBudget,
		Log:            flog,
		MaxCommitBatch: opts.MaxCommitBatch,
		MaxCommitDelay: opts.MaxCommitDelay,
	})
	if err != nil {
		flog.Close()
		store.Close()
		return nil, err
	}
	// Replay only the records the checkpointed image does not already
	// contain: everything at or below the manifest LSN was materialized into
	// the segment before the manifest swapped (the post-swap-pre-truncate
	// crash leaves exactly such records behind).
	tail := records[:0]
	for _, rec := range records {
		if rec.LSN > man.LSN {
			tail = append(tail, rec)
		}
	}
	if err := mgr.Recover(tail); err != nil {
		flog.Close()
		store.Close()
		return nil, fmt.Errorf("pdtstore: WAL replay: %w", err)
	}
	db := &DB{
		dir:     dir,
		lock:    lock,
		opts:    opts,
		schema:  store.Schema(),
		dev:     dev,
		tbl:     tbl,
		mgr:     mgr,
		log:     flog,
		man:     man,
		nextGen: man.Generation,
	}
	opened = true
	return db, nil
}

// Schema returns the store's schema.
func (db *DB) Schema() *types.Schema { return db.schema }

// Dir returns the store directory.
func (db *DB) Dir() string { return db.dir }

// Table returns the underlying table (reads and plans build over it).
// Direct table reads always track the newest installed version and are not
// pinned: once a checkpoint supersedes a stable image, its descriptor is
// closed as soon as the last pinned *transaction* releases it, so a direct
// scan that must survive concurrent maintenance should run through Begin
// (which pins the version for the transaction's lifetime) instead.
func (db *DB) Table() *table.Table { return db.tbl }

// Manager returns the transaction manager.
func (db *DB) Manager() *txn.Manager { return db.mgr }

// Begin starts a snapshot-isolated transaction.
func (db *DB) Begin() *txn.Txn { return db.mgr.Begin() }

// Log returns the durable commit log (for stats: size, file count).
func (db *DB) Log() *wal.FileLog { return db.log }

// Manifest returns the current durable manifest.
func (db *DB) Manifest() storage.Manifest {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.man
}

// Checkpoint makes the online checkpoint durable: the committed state is
// streamed into segment generation N+1 and fsynced, the MANIFEST swaps to it
// (the commit point), and the WAL drops every record the new image contains.
// Commits keep flowing throughout — they land in a side delta layer and stay
// in the log until the next checkpoint.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return fmt.Errorf("pdtstore: checkpoint on closed DB")
	}
	db.nextGen++
	gen := db.nextGen
	name := segmentName(gen)
	var freezeLSN uint64
	var retired *colstore.Store
	err := db.mgr.CheckpointInto(func(lsn uint64, store *colstore.Store, deltas ...*pdt.PDT) (*colstore.Store, error) {
		freezeLSN = lsn
		retired = store
		b, err := colstore.NewFileBuilder(db.schema, db.dev, db.opts.BlockRows, db.opts.Compressed, filepath.Join(db.dir, name))
		if err != nil {
			return nil, err
		}
		if err := db.tbl.MaterializeStream(b, store, deltas...); err != nil {
			b.Abort()
			return nil, err
		}
		if err := db.injectFault(faultMidSegmentWrite); err != nil {
			return nil, err // crash sim: partial file stays, no footer
		}
		return b.Finish() // footer + fsync: image durable past here
	})
	if err != nil {
		return err
	}
	// The manager has installed the new image: the base store is superseded
	// in memory from here on, whatever happens to the manifest below.
	if retired != nil {
		db.retired = append(db.retired, retired)
	}
	if err := db.injectFault(faultPreManifestSwap); err != nil {
		return err
	}
	prev := db.man
	man := storage.Manifest{Generation: gen, Segment: name, LSN: freezeLSN}
	if err := storage.WriteManifest(db.dir, man); err != nil {
		return err
	}
	db.man = man
	// Unlink the superseded segment's directory entry. Pinned readers keep
	// their open descriptor (POSIX keeps the data alive until Close releases
	// it); recovery never needs a non-manifest segment.
	if prev.Segment != man.Segment {
		os.Remove(filepath.Join(db.dir, prev.Segment))
	}
	if err := db.injectFault(faultPostSwapPreTruncate); err != nil {
		return err
	}
	// Past the swap the checkpoint is already durable; truncation is space
	// reclamation (recovery filters by the manifest LSN either way).
	return db.log.TruncateBelow(freezeLSN)
}

// Close waits for background maintenance, then releases the log and every
// file-backed image. It reports a sticky maintenance failure, if any.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	maintErr := db.mgr.WaitMaintenance()
	err := db.log.Close()
	if cerr := db.tbl.Store().Close(); err == nil {
		err = cerr
	}
	for _, s := range db.retired {
		s.Close()
	}
	unlockDir(db.lock)
	if maintErr != nil {
		return maintErr
	}
	return err
}

// crash simulates process death in the kill-and-reopen tests: every
// descriptor is released with no orderly shutdown — no maintenance wait, no
// log flush, no manifest work. On-disk state stays exactly as the last fsync
// left it (closing a descriptor never undoes durable writes), and the
// advisory LOCK is released just as a dying process would release it.
func (db *DB) crash() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	db.closed = true
	db.log.Close()
	db.tbl.Store().Close()
	for _, s := range db.retired {
		s.Close()
	}
	unlockDir(db.lock)
}

func (db *DB) injectFault(point string) error {
	if db.fault == nil {
		return nil
	}
	return db.fault(point)
}

// gcStraySegments removes segment files other than the one the manifest
// names: partial images from crashed checkpoints and fully superseded
// generations.
func gcStraySegments(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == keep || e.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

func schemaEqual(a, b *types.Schema) bool {
	if a.NumCols() != b.NumCols() || len(a.SortKey) != len(b.SortKey) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	for i := range a.SortKey {
		if a.SortKey[i] != b.SortKey[i] {
			return false
		}
	}
	return true
}
