// Package pdtstore is a from-scratch Go reproduction of "Positional Update
// Handling in Column Stores" (Héman, Zukowski, Nes, Sidirourgos, Boncz —
// SIGMOD 2010): the Positional Delta Tree (PDT), its value-based baseline
// (VDT), the columnar storage and query substrate they run on, layered-PDT
// snapshot-isolation transactions, and the paper's full evaluation harness.
//
// Every read goes through internal/engine, the vectorized scan-pipeline
// engine: plans compose a source (plain colstore scan, positional PDT
// MergeScan stack, or value-based VDT merge), typed filter kernels over
// reusable selection vectors, and pushed-down column projection, serving the
// table layer, the transaction layer and the TPC-H workload alike.
//
// The write path is vectorized end to end as well: batches of updates
// resolve their target positions with one shared merge-scan cursor
// (Table.ApplyBatch, Txn.ApplyBatch), commits serialize straight out of the
// Trans-PDT into a buffer-reusing WAL, PDT layers fold into each other with
// an O(n+m) leaf-chain merge (pdt.Propagate, with the per-entry reference
// kept as PropagateEntrywise), and checkpoints stream the merged view into
// the block builder without materializing rows.
//
// Maintenance is online: every transaction pins an immutable (stable image,
// Read-PDT) version at Begin, and both downward folds — Write→Read
// propagation when the Write-PDT outgrows its budget, and Checkpoint's
// rebuild of the stable image — run in the background against a frozen
// layer, installing their result as a new version with a pointer swap while
// commits keep landing in a fresh delta layer (pdt.Fold, the
// non-destructive merge, makes the frozen inputs shareable). Retired
// versions are released when their last reader finishes, evicting the old
// image's blocks from the buffer pool. Neither propagation nor
// checkpointing ever waits for, or stalls, running transactions.
//
// Storage is durable: Open(dir) recovers a store from stable storage and
// DB.Checkpoint writes it back. The stable image lives in immutable segment
// files (per-column encoded blocks behind a CRC'd footer, pread lazily
// through the buffer pool, internal/storage), commits append to a rotated,
// fsynced file WAL (internal/wal), and a MANIFEST names the current
// segment generation plus the WAL position it contains. A checkpoint streams
// the committed view into the next generation, fsyncs, atomically swaps the
// MANIFEST and truncates the log; recovery loads the manifest's segment,
// replays only the WAL tail past the manifest's LSN (so an interrupted
// truncation cannot double-apply), truncates a torn final record, and
// resumes the commit clock. Crashing at any point of that sequence recovers
// exactly the committed state. A superseded segment's descriptor is closed
// as soon as its last pinned reader finishes, not at DB.Close.
//
// Checkpoints are incremental and cost-based: the frozen PDT's positional
// updates compute an exact dirty-block set, and a checkpoint writes only
// those blocks into a small delta segment chained onto the previous
// generation, whose footer block map resolves every logical block to the
// chain member holding its current bytes (refcounted; fully superseded
// members are unlinked after the manifest swap). An empty delta shares the
// previous image outright, and a delta worth more than half the table — or
// a chain at CheckpointOptions.MaxGenerations — collapses to a full
// rewrite. The same cost model drives an optional background scheduler
// (CheckpointOptions.Auto) that checkpoints a shard when its estimated WAL
// replay cost outgrows the estimated checkpoint cost, bounding cold-open
// time; knobs are validated at Open. DB.Stats exposes the per-shard WAL
// tail, generation chain, per-segment live-block counts and the last
// scheduler decision.
//
// The public write surface is the Tx interface: DB.Begin returns one
// regardless of sharding, and DB.Stats is the window into durability
// state. The old accessors — DB.Manager, DB.Log, DB.ShardLog and
// DB.Manifest — remain as deprecated wrappers for one release: they leak
// internal types (txn.Manager, wal.FileLog, storage.Manifest) and bypass
// the locking Stats does for you; migrate to DB.Begin, DB.Stats and
// DB.Checkpoint. TestPublicAPISnapshot pins the exported surface against
// testdata/api.golden so drift is caught in review.
//
// Commits group-commit: concurrent Txn.Commit calls validate and fold under
// a narrow critical section, park on a commit sequencer, and a leader makes
// the whole batch durable with one WAL append and one fsync
// (wal.AppendGroup), waking every waiter with its LSN — Begin and scans
// never wait behind an in-flight fsync, and a failed barrier aborts the
// whole batch fail-stop with nothing visible, live or at replay.
// Options.MaxCommitBatch and Options.MaxCommitDelay tune the batching.
//
// The serialized part of that commit path is O(change), not O(state):
// Begin takes a copy-on-write Write-PDT snapshot in O(1) (pdt.Snapshot;
// later updates path-copy only the spine they touch, and the commit-time
// fold forks rather than rebuilds its base via pdt.FoldSnap), committing
// over k overlapping transactions runs one cascaded sweep instead of k
// serialize passes (pdt.SerializeChain), and an insert's position probe
// stages merge-scan batches at the consumer's size, compares keys against
// column vectors without materializing rows, and decodes only the tail of
// the stable block it enters — for every encoding, dictionary and RLE
// included — while still fetching (and charging) whole blocks from the
// device.
//
// Writes shard per core: Options.Shards partitions a table into N key-range
// shards, each a full transaction manager over its own physically split
// stable image, Write-PDT, commit sequencer and WAL stream, coordinated by
// one global monotonic commit clock (txn.Sharded). Single-shard commits go
// through their home shard's sequencer with no global lock; cross-shard
// commits run two phases — prepare every participant, append one record per
// participant stream under one shared LSN naming the full participant set,
// then install behind a begin gate — and recovery drops incomplete groups
// from every stream (wal.CompleteGroups), so a torn cross-shard commit is
// all-or-nothing per clock entry. Begin pins a consistent per-shard snapshot
// vector; an existing unsharded store adopts sharding at Open (checkpointed
// tail required, manifest swap as the commit point); checkpoints build
// per-shard segments behind a single manifest swap and truncate each stream
// at its own freeze LSN.
//
// Selective scans prune before they read. Every checkpoint stamps a zone
// map — min/max plus null count — per (column, block) into the segment
// footer (delta segments inherit the entries for blocks they don't
// rewrite), and Options.IndexColumns opts columns into secondary block
// indexes: per-block value summaries over the stable image — exact distinct
// sets, decode-free dictionary/RLE value lists, or Bloom filters — built at
// Open and maintained at checkpoint time (incremental checkpoints rebuild
// only dirty blocks, sharing clean summaries with the previous index).
// A Plan's filters compile to predicate descriptors; before running, the
// engine folds the transaction's pinned PDT stack to stable coordinates and
// skips each clean block that the zone map or the index proves empty of
// matches. Blocks any buffered insert, delete or modify touches are always
// read, so pruned scans are snapshot-consistent by construction — the
// differential suites hold them byte-identical to full scans across TPC-H
// and randomized update histories, at every shard count. Stats counts the
// skips (ZoneSkippedBlocks, IndexSkippedBlocks); engine.SetPruning and
// Plan.NoPrune are the kill switches; cmd/pdtbench -fig lookup records the
// cold-latency payoff against the full-scan baseline.
//
// See README.md for the quickstart and docs/ARCHITECTURE.md for the full
// stack walk with commit and scan data-flow diagrams. The benchmarks in
// bench_test.go regenerate every figure of the paper's §4, plus the engine's
// scan-pipeline profile (cmd/pdtbench -fig scan), the write-path profile
// (cmd/pdtbench -fig update), the online-maintenance figure
// (cmd/pdtbench -fig online), the durability figure — now including the
// incremental-vs-full checkpoint profile — (cmd/pdtbench -fig recovery),
// the group-commit figure (cmd/pdtbench -fig commit) and the access-path
// figure (cmd/pdtbench -fig lookup).
package pdtstore
