// Package pdtstore is a from-scratch Go reproduction of "Positional Update
// Handling in Column Stores" (Héman, Zukowski, Nes, Sidirourgos, Boncz —
// SIGMOD 2010): the Positional Delta Tree (PDT), its value-based baseline
// (VDT), the columnar storage and query substrate they run on, layered-PDT
// snapshot-isolation transactions, and the paper's full evaluation harness.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced evaluation. The benchmarks in
// bench_test.go regenerate every figure of the paper's §4.
package pdtstore
