// Package pdtstore is a from-scratch Go reproduction of "Positional Update
// Handling in Column Stores" (Héman, Zukowski, Nes, Sidirourgos, Boncz —
// SIGMOD 2010): the Positional Delta Tree (PDT), its value-based baseline
// (VDT), the columnar storage and query substrate they run on, layered-PDT
// snapshot-isolation transactions, and the paper's full evaluation harness.
//
// Every read goes through internal/engine, the vectorized scan-pipeline
// engine: plans compose a source (plain colstore scan, positional PDT
// MergeScan stack, or value-based VDT merge), typed filter kernels over
// reusable selection vectors, and pushed-down column projection, serving the
// table layer, the transaction layer and the TPC-H workload alike.
//
// The write path is vectorized end to end as well: batches of updates
// resolve their target positions with one shared merge-scan cursor
// (Table.ApplyBatch, Txn.ApplyBatch), commits serialize straight out of the
// Trans-PDT into a buffer-reusing WAL, PDT layers fold into each other with
// an O(n+m) leaf-chain merge (pdt.Propagate, with the per-entry reference
// kept as PropagateEntrywise), and checkpoints stream the merged view into
// the block builder without materializing rows.
//
// See README.md for an architecture tour and quickstart. The benchmarks in
// bench_test.go regenerate every figure of the paper's §4, plus the engine's
// scan-pipeline profile (cmd/pdtbench -fig scan) and the write-path profile
// (cmd/pdtbench -fig update).
package pdtstore
