package pdtstore

// Kill-and-reopen crash tests for the durable lifecycle. "Killing" the store
// means db.crash(): descriptors (and the advisory LOCK) are released exactly
// as process death releases them, with no orderly shutdown — no maintenance
// wait, no log flush, no manifest work — then Open(dir) runs cold recovery on
// the same directory. Fault points injected into the checkpoint sequence cut
// it at its three interesting seams; after every cut, recovery must
// reconstruct exactly the committed state: nothing lost, nothing doubled.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

var dbSchema = types.MustSchema([]types.Column{
	{Name: "k", Kind: types.Int64},
	{Name: "v", Kind: types.String},
	{Name: "n", Kind: types.Int64},
}, []int{0})

// model mirrors the committed state: key → (v, n).
type modelRow struct {
	V string
	N int64
}

type model map[int64]modelRow

func (m model) clone() model {
	out := make(model, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func openTestDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir, Options{Schema: dbSchema, BlockRows: 64, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// commitInserts commits [lo, hi) as one transaction and updates the model.
func commitInserts(t *testing.T, db *DB, m model, lo, hi int64) {
	t.Helper()
	ops := make([]table.Op, 0, hi-lo)
	for k := lo; k < hi; k++ {
		ops = append(ops, table.Op{Kind: table.OpInsert,
			Row: types.Row{types.Int(k), types.Str(fmt.Sprintf("v%d", k)), types.Int(k * 10)}})
	}
	tx := db.Begin()
	if _, err := tx.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for k := lo; k < hi; k++ {
		m[k] = modelRow{V: fmt.Sprintf("v%d", k), N: k * 10}
	}
}

// commitMixed commits updates to [lo, hi) (modify n, delete every 5th key)
// in one transaction and updates the model.
func commitMixed(t *testing.T, db *DB, m model, lo, hi int64) {
	t.Helper()
	var ops []table.Op
	for k := lo; k < hi; k++ {
		if _, ok := m[k]; !ok {
			continue
		}
		if k%5 == 0 {
			ops = append(ops, table.Op{Kind: table.OpDelete, Key: types.Row{types.Int(k)}})
			delete(m, k)
		} else {
			ops = append(ops, table.Op{Kind: table.OpUpdate, Key: types.Row{types.Int(k)}, Col: 2, Val: types.Int(-k)})
			m[k] = modelRow{V: m[k].V, N: -k}
		}
	}
	tx := db.Begin()
	if _, err := tx.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// readAll scans the full committed state through a fresh transaction (the
// direct table view excludes the master Write-PDT, where both live commits
// and recovered WAL records buffer until the next fold).
func readAll(t *testing.T, db *DB) model {
	t.Helper()
	tx := db.Begin()
	defer tx.Abort()
	got := model{}
	err := engine.Scan(tx, 0, 1, 2).Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			r := b.Row(int(i))
			if _, dup := got[r[0].I]; dup {
				return fmt.Errorf("duplicate key %d surfaced by scan", r[0].I)
			}
			got[r[0].I] = modelRow{V: r[1].S, N: r[2].I}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func checkState(t *testing.T, db *DB, want model) {
	t.Helper()
	got := readAll(t, db)
	if len(got) != len(want) {
		t.Fatalf("state has %d rows, want %d", len(got), len(want))
	}
	keys := make([]int64, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if got[k] != want[k] {
			t.Fatalf("key %d: got %+v, want %+v", k, got[k], want[k])
		}
	}
}

func TestOpenCreateCommitReopen(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	commitInserts(t, db, m, 0, 200)
	commitMixed(t, db, m, 0, 100)
	lsn := db.Stats().Shard[0].LSN
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openTestDB(t, dir)
	defer db2.Close()
	checkState(t, db2, m)
	if got := db2.Stats().Shard[0].LSN; got != lsn {
		t.Fatalf("clock after reopen = %d, want %d", got, lsn)
	}
	// Commits continue the LSN sequence.
	commitInserts(t, db2, m, 1000, 1010)
	if got := db2.Stats().Shard[0].LSN; got != lsn+1 {
		t.Fatalf("clock after post-reopen commit = %d, want %d", got, lsn+1)
	}
	checkState(t, db2, m)
}

// TestOpenIsExclusive: a second opener must be rejected while the store is
// held (two WAL appenders with independent clocks would corrupt it), and
// admitted again once the holder closes — or dies (crash releases the flock
// exactly as process death does).
func TestOpenIsExclusive(t *testing.T) {
	if !lockEnforced {
		t.Skip("advisory locking not enforced on this platform (lock_other.go fallback)")
	}
	dir := t.TempDir()
	db := openTestDB(t, dir)
	if _, err := Open(dir, Options{Schema: dbSchema}); err == nil {
		t.Fatal("second Open of a held store succeeded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTestDB(t, dir)
	db2.crash()
	db3 := openTestDB(t, dir)
	db3.Close()
}

func TestOpenRejectsSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	db.Close()
	other := types.MustSchema([]types.Column{{Name: "x", Kind: types.Int64}}, []int{0})
	if _, err := Open(dir, Options{Schema: other}); err == nil {
		t.Fatal("mismatched schema accepted")
	}
}

// TestCrashRecovery is the kill-and-reopen harness. Every scenario builds
// committed state, dies at a chosen point (without Close), reopens cold, and
// asserts recovery reproduced the committed state exactly — no lost commits,
// no double-applied WAL entries.
func TestCrashRecovery(t *testing.T) {
	t.Run("kill-before-any-checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		m := model{}
		db := openTestDB(t, dir)
		commitInserts(t, db, m, 0, 150)
		commitMixed(t, db, m, 0, 150)
		// Die with everything only in the WAL.
		db.crash()
		db2 := openTestDB(t, dir)
		checkState(t, db2, m)
		db2.Close()
	})

	t.Run("kill-after-clean-checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		m := model{}
		db := openTestDB(t, dir)
		commitInserts(t, db, m, 0, 150)
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		commitMixed(t, db, m, 0, 150) // tail past the checkpoint
		db.crash()
		db2 := openTestDB(t, dir)
		checkState(t, db2, m)
		if db2.Stats().Generation != 2 {
			t.Fatalf("generation = %d, want 2", db2.Stats().Generation)
		}
		db2.Close()
	})

	// The three injected fault points of the checkpoint sequence. At each,
	// the checkpoint dies mid-flight after extra commits landed during the
	// image build; recovery must surface every commit exactly once.
	for _, point := range []string{faultMidSegmentWrite, faultPreManifestSwap, faultPostSwapPreTruncate} {
		t.Run("kill-at-"+point, func(t *testing.T) {
			dir := t.TempDir()
			m := model{}
			db := openTestDB(t, dir)
			commitInserts(t, db, m, 0, 120)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err) // a real first checkpoint, so the WAL has a truncation history
			}
			commitMixed(t, db, m, 0, 60)

			crash := errors.New("simulated crash")
			db.fault = func(p string) error {
				if p == faultMidSegmentWrite {
					// Commits racing the image build: they land in the side
					// layer and the WAL with LSN > freeze LSN.
					commitInserts(t, db, m, 500, 520)
				}
				if p == point {
					return crash
				}
				return nil
			}
			if err := db.Checkpoint(); !errors.Is(err, crash) {
				t.Fatalf("checkpoint error = %v, want the injected crash", err)
			}
			// Die here: no orderly shutdown.
			db.crash()
			db2 := openTestDB(t, dir)
			checkState(t, db2, m)
			// Post-recovery commits and a real checkpoint still work.
			commitInserts(t, db2, m, 2000, 2020)
			if err := db2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			checkState(t, db2, m)
			db2.Close()

			db3 := openTestDB(t, dir)
			checkState(t, db3, m)
			db3.Close()
		})
	}

	t.Run("kill-mid-wal-append", func(t *testing.T) {
		dir := t.TempDir()
		m := model{}
		db := openTestDB(t, dir)
		commitInserts(t, db, m, 0, 80)
		commitMixed(t, db, m, 0, 40)
		db.crash()
		// Shear bytes off the newest WAL file: a commit died mid-append. The
		// torn record was never acknowledged, so recovery owes only the
		// records before it.
		walDir := filepath.Join(dir, "wal")
		entries, err := os.ReadDir(walDir)
		if err != nil {
			t.Fatal(err)
		}
		var newest string
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".wal") && e.Name() > newest {
				newest = e.Name()
			}
		}
		path := filepath.Join(walDir, newest)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-11], 0o644); err != nil {
			t.Fatal(err)
		}
		// The sheared record is the commitMixed one: roll the model back to
		// the insert-only state.
		m2 := model{}
		for k := int64(0); k < 80; k++ {
			m2[k] = modelRow{V: fmt.Sprintf("v%d", k), N: k * 10}
		}
		db2 := openTestDB(t, dir)
		checkState(t, db2, m2)
		// And the log accepts new commits after the repair.
		commitInserts(t, db2, m2, 3000, 3010)
		db2.Close()
		db3 := openTestDB(t, dir)
		checkState(t, db3, m2)
		db3.Close()
	})
}

// TestCheckpointRetryAfterFailedSwap: when the manifest write fails, the
// manager has already installed the new segment as its live store. The retry
// must take a fresh generation number — reusing the old one would O_TRUNC
// the file the live store is reading.
func TestCheckpointRetryAfterFailedSwap(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	defer db.Close()
	commitInserts(t, db, m, 0, 300)
	transient := errors.New("transient manifest failure")
	db.fault = func(p string) error {
		if p == faultPreManifestSwap {
			return transient
		}
		return nil
	}
	if err := db.Checkpoint(); !errors.Is(err, transient) {
		t.Fatalf("checkpoint error = %v, want the injected failure", err)
	}
	db.fault = nil
	commitInserts(t, db, m, 1000, 1020)
	// Force the retry's materialize to pread the live (failed-swap) segment.
	db.dev.DropCaches()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("retry checkpoint: %v", err)
	}
	checkState(t, db, m)
	if gen := db.Stats().Generation; gen < 3 {
		t.Fatalf("manifest generation = %d, want a fresh (skipped) generation >= 3", gen)
	}
	// Cold recovery agrees with the live state.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openTestDB(t, dir)
	defer db2.Close()
	checkState(t, db2, m)
}

// TestCheckpointTruncationOrdering pins the satellite contract directly: a
// crash between manifest swap and WAL truncation leaves every pre-freeze
// record in the log, and recovery must skip all of them (they are already in
// the new image) while still applying the post-freeze tail.
func TestCheckpointTruncationOrdering(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	commitInserts(t, db, m, 0, 100) // will be inside the image
	crash := errors.New("simulated crash")
	db.fault = func(p string) error {
		if p == faultMidSegmentWrite {
			commitInserts(t, db, m, 200, 230) // post-freeze tail, WAL-only
		}
		if p == faultPostSwapPreTruncate {
			return crash
		}
		return nil
	}
	if err := db.Checkpoint(); !errors.Is(err, crash) {
		t.Fatalf("checkpoint error = %v", err)
	}
	db.crash()
	// The WAL still holds the pre-freeze insert record; the manifest already
	// points at the image containing those rows. A replay that ignored the
	// manifest LSN would try to re-insert keys 0..99 and either fail or
	// double them.
	db2 := openTestDB(t, dir)
	defer db2.Close()
	checkState(t, db2, m)
	st := db2.Stats()
	if st.Generation != 2 || st.Shard[0].FreezeLSN == 0 {
		t.Fatalf("stats = %+v, want generation 2 with a freeze LSN", st)
	}
}

// TestCheckpointTruncatesWAL: the happy path actually reclaims log space.
func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	defer db.Close()
	commitInserts(t, db, m, 0, 400)
	before := db.Stats().Shard[0].WALBytes
	if before == 0 {
		t.Fatal("WAL empty after commits")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := db.Stats().Shard[0].WALBytes
	if after >= before {
		t.Fatalf("WAL size %d after checkpoint, was %d before", after, before)
	}
	checkState(t, db, m)
}

// TestColdScanDoesRealIO: reopening leaves the image on disk; the first scan
// pays real read bytes, a warm rescan pays none.
func TestColdScanDoesRealIO(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	commitInserts(t, db, m, 0, 5000)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2 := openTestDB(t, dir)
	defer db2.Close()
	db2.dev.ResetStats()
	checkState(t, db2, m)
	coldBytes, coldReads := db2.dev.Stats()
	if coldBytes == 0 || coldReads == 0 {
		t.Fatalf("cold scan after reopen charged no I/O (bytes=%d reads=%d)", coldBytes, coldReads)
	}
	db2.dev.ResetStats()
	checkState(t, db2, m)
	if warmBytes, _ := db2.dev.Stats(); warmBytes != 0 {
		t.Fatalf("warm rescan charged %d bytes", warmBytes)
	}
}

// TestGroupCommitFsyncFailureRecovery: a batch of concurrent commits dies at
// the durability barrier (injected one-shot fsync failure). Every
// transaction in and behind the batch must fail, the log stays poisoned for
// the rest of the process's life, and a kill-and-reopen must surface exactly
// the pre-failure committed state — no record of the failed batch may
// resurface from the page cache or a torn tail.
func TestGroupCommitFsyncFailureRecovery(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	commitInserts(t, db, m, 0, 60)
	commitMixed(t, db, m, 0, 30)
	lsn := db.Stats().Shard[0].LSN

	db.logs[0].FailNextSync(errors.New("injected: barrier failure under the batch"))
	const writers = 6
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		w := w
		go func() {
			tx := db.Begin()
			if err := tx.Insert(types.Row{types.Int(int64(9000 + w)), types.Str("doomed"), types.Int(0)}); err != nil {
				errs <- err
				return
			}
			errs <- tx.Commit()
		}()
	}
	for i := 0; i < writers; i++ {
		if err := <-errs; err == nil {
			t.Fatal("a commit in or behind the failed batch succeeded")
		}
	}
	if got := db.Stats().Shard[0].LSN; got != lsn {
		t.Fatalf("failed batch moved the clock: %d -> %d", lsn, got)
	}
	// The live view still serves exactly the pre-failure state.
	checkState(t, db, m)

	// Kill and reopen: recovery replays the log cold. None of the failed
	// batch's records may surface.
	db.crash()
	db2 := openTestDB(t, dir)
	defer db2.Close()
	checkState(t, db2, m)
	if got := db2.Stats().Shard[0].LSN; got != lsn {
		t.Fatalf("clock after reopen = %d, want %d", got, lsn)
	}
	// The reopened store commits normally and continues the LSN sequence.
	commitInserts(t, db2, m, 9100, 9110)
	checkState(t, db2, m)
	if got := db2.Stats().Shard[0].LSN; got != lsn+1 {
		t.Fatalf("post-recovery commit got LSN %d, want %d", got, lsn+1)
	}
}

// TestRetiredImageClosesOnLastRelease: a checkpoint supersedes the stable
// image; the old segment's descriptor must stay open while a transaction is
// still pinned to it — the pinned snapshot keeps reading the unlinked file —
// and must be closed the moment that last reader finishes, not at DB.Close.
func TestRetiredImageClosesOnLastRelease(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	defer db.Close()
	commitInserts(t, db, m, 0, 120)
	if err := db.Checkpoint(); err != nil { // gen 2: first image with real data
		t.Fatal(err)
	}
	snapshot := m.clone()
	long := db.Begin() // pins the gen-2 version
	seg := db.Table().Store().Segment()
	if seg == nil {
		t.Fatal("checkpointed store is not file-backed")
	}

	commitMixed(t, db, m, 0, 60)
	if err := db.Checkpoint(); err != nil { // gen 3 retires gen 2
		t.Fatal(err)
	}
	if seg.Closed() {
		t.Fatal("retired segment closed while a transaction is still pinned to it")
	}
	// The pinned transaction reads its full pre-checkpoint snapshot from the
	// retired (already unlinked) segment.
	got := model{}
	err := engine.Scan(long, 0, 1, 2).Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			r := b.Row(int(i))
			got[r[0].I] = modelRow{V: r[1].S, N: r[2].I}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snapshot) {
		t.Fatalf("pinned snapshot has %d rows, want %d", len(got), len(snapshot))
	}

	if err := long.Abort(); err != nil {
		t.Fatal(err)
	}
	if !seg.Closed() {
		t.Fatal("retired segment's descriptor still open after its last pinned reader released it")
	}
	// The live view is unaffected.
	checkState(t, db, m)
}
