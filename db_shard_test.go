package pdtstore

// Kill-and-reopen crash tests for sharded stores: per-shard WAL streams, one
// global commit clock, and the cross-shard cut points. The harness holds at
// every seam — between two shards' WAL appends of one cross-shard commit
// (only some streams got their record: reopen must drop the commit from all
// of them), between the in-memory installs (every stream has the record:
// reopen must surface the commit whole), and at every fault point of the
// sharded checkpoint sequence, including between two shards' image builds.

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/table"
	"pdtstore/internal/txn"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
	"pdtstore/internal/wal"
)

// shardTestCuts split the int64 key space for up to 4 shards.
var shardTestCuts = []types.Row{
	{types.Int(250)}, {types.Int(500)}, {types.Int(750)},
}

func openShardDB(t *testing.T, dir string, shards int) *DB {
	t.Helper()
	db, err := Open(dir, Options{
		Schema: dbSchema, BlockRows: 64, Compressed: true,
		Shards: shards, ShardKeys: shardTestCuts[:shards-1],
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// sCommitInserts commits the given keys as one (possibly cross-shard)
// transaction and updates the model.
func sCommitInserts(t *testing.T, db *DB, m model, keys ...int64) {
	t.Helper()
	ops := make([]table.Op, 0, len(keys))
	for _, k := range keys {
		ops = append(ops, table.Op{Kind: table.OpInsert,
			Row: types.Row{types.Int(k), types.Str(fmt.Sprintf("v%d", k)), types.Int(k * 10)}})
	}
	tx := db.Begin()
	if _, err := tx.ApplyBatch(ops); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		m[k] = modelRow{V: fmt.Sprintf("v%d", k), N: k * 10}
	}
}

// sReadAll scans the full committed state through a fresh sharded
// transaction (globally consecutive RIDs, shards concatenated in key order).
func sReadAll(t *testing.T, db *DB) model {
	t.Helper()
	tx := db.Begin()
	defer tx.Abort()
	got := model{}
	var lastKey int64 = -1 << 62
	err := engine.Scan(tx, 0, 1, 2).Run(func(b *vector.Batch, sel []uint32) error {
		for _, i := range sel {
			r := b.Row(int(i))
			if _, dup := got[r[0].I]; dup {
				return fmt.Errorf("duplicate key %d surfaced by scan", r[0].I)
			}
			if r[0].I <= lastKey {
				return fmt.Errorf("key order broken across shards: %d after %d", r[0].I, lastKey)
			}
			lastKey = r[0].I
			got[r[0].I] = modelRow{V: r[1].S, N: r[2].I}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func sCheckState(t *testing.T, db *DB, want model) {
	t.Helper()
	got := sReadAll(t, db)
	if len(got) != len(want) {
		t.Fatalf("state has %d rows, want %d", len(got), len(want))
	}
	keys := make([]int64, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if got[k] != want[k] {
			t.Fatalf("key %d: got %+v, want %+v", k, got[k], want[k])
		}
	}
}

// replayStream reads shard i's WAL stream from disk (the DB must be closed
// or crashed; the read-only peek opens and closes its own descriptors).
func replayStream(t *testing.T, dir string, shard int) []wal.Record {
	t.Helper()
	flog, records, err := wal.OpenFileLog(filepath.Join(dir, shardWalDir(shard)))
	if err != nil {
		t.Fatal(err)
	}
	flog.Close()
	return records
}

func TestShardedBootstrapCommitReopen(t *testing.T) {
	dir := t.TempDir()
	db := openShardDB(t, dir, 4)
	if db.Shards() != 4 || db.Sharded() == nil {
		t.Fatalf("Shards() = %d, sharded = %v", db.Shards(), db.Sharded())
	}
	if db.Table() != nil || db.Manager() != nil {
		t.Fatal("sharded DB must not expose a flat table/manager")
	}
	man := db.man
	if len(man.Shards) != 4 || len(man.Splits) != 3 || man.Segment != "" {
		t.Fatalf("sharded manifest = %+v", man)
	}
	m := model{}
	sCommitInserts(t, db, m, 10, 20, 30)          // shard 0 only
	sCommitInserts(t, db, m, 100, 300, 600, 900)  // all four shards
	sCommitInserts(t, db, m, 260, 270, 510, 1000) // shards 1, 2, 3
	sCheckState(t, db, m)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = openShardDB(t, dir, 4)
	defer db.Close()
	sCheckState(t, db, m)
	// Reopening without Options.Shards follows the manifest's layout.
	db.Close()
	db2, err := Open(dir, Options{Schema: dbSchema})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Shards() != 4 {
		t.Fatalf("manifest layout ignored: Shards() = %d", db2.Shards())
	}
	sCheckState(t, db2, m)
}

func TestShardedReshardRejected(t *testing.T) {
	dir := t.TempDir()
	db := openShardDB(t, dir, 4)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Schema: dbSchema, Shards: 2, ShardKeys: shardTestCuts[:1]}); err == nil ||
		!strings.Contains(err.Error(), "re-sharding") {
		t.Fatalf("re-shard 4→2 accepted: %v", err)
	}
}

func TestShardedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openShardDB(t, dir, 4)
	m := model{}
	sCommitInserts(t, db, m, 1, 2, 3, 251, 252, 501, 751)
	sCommitInserts(t, db, m, 800, 900) // shard 3 single-shard batches
	clock := db.Sharded().Clock()
	db.crash()

	db = openShardDB(t, dir, 4)
	sCheckState(t, db, m)
	if got := db.Sharded().Clock(); got < clock {
		t.Fatalf("commit clock rewound across crash: %d < %d", got, clock)
	}
	// The clock keeps ticking past recovery: another round, another crash.
	sCommitInserts(t, db, m, 4, 254, 504, 754)
	db.crash()
	db = openShardDB(t, dir, 4)
	defer db.Close()
	sCheckState(t, db, m)
}

func TestShardedAdoptUnsharded(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	m := model{}
	commitInserts(t, db, m, 0, 400)
	commitMixed(t, db, m, 100, 200)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Adopt with nil ShardKeys: quantile cuts read off the image.
	db2, err := Open(dir, Options{Schema: dbSchema, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db2.Shards() != 4 {
		t.Fatalf("Shards() = %d after adopt", db2.Shards())
	}
	man := db2.man
	if len(man.Shards) != 4 || len(man.Splits) != 3 {
		t.Fatalf("adopted manifest = %+v", man)
	}
	sCheckState(t, db2, m)
	// Adopted stores commit and recover like any sharded store.
	sCommitInserts(t, db2, m, 1001, 1002)
	db2.crash()
	db2 = openShardDB(t, dir, 4)
	defer db2.Close()
	sCheckState(t, db2, m)
}

func TestShardedAdoptRequiresEmptyTail(t *testing.T) {
	dir := t.TempDir()
	db := openTestDB(t, dir)
	m := model{}
	commitInserts(t, db, m, 0, 100) // no checkpoint: records past the freeze LSN
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Schema: dbSchema, Shards: 4}); err == nil ||
		!strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("adopt with a non-empty WAL tail accepted: %v", err)
	}
	// The refused adopt must leave the unsharded store fully usable.
	db = openTestDB(t, dir)
	defer db.Close()
	checkState(t, db, m)
}

// TestShardedCrashBetweenAppends cuts a cross-shard commit between two
// shards' batch fsyncs: the first participant's stream has the group record
// durable, the second's does not. Reopen must treat the commit as never
// having happened — on every shard.
func TestShardedCrashBetweenAppends(t *testing.T) {
	dir := t.TempDir()
	db := openShardDB(t, dir, 4)
	m := model{}
	sCommitInserts(t, db, m, 10, 260, 510, 760)

	errBoom := errors.New("injected crash between shard appends")
	db.Sharded().SetCommitFault(&txn.CommitFault{
		BetweenAppends: func(i int) error { return errBoom },
	})
	tx := db.Begin()
	if _, err := tx.ApplyBatch([]table.Op{
		{Kind: table.OpInsert, Row: types.Row{types.Int(50), types.Str("torn"), types.Int(0)}},
		{Kind: table.OpInsert, Row: types.Row{types.Int(950), types.Str("torn"), types.Int(0)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, errBoom) {
		t.Fatalf("Commit through the fault = %v", err)
	}
	db.crash()

	// The torn group really is torn: shard 0's stream carries the two-party
	// record, shard 3's stream does not.
	torn := func(recs []wal.Record) bool {
		for _, r := range recs {
			if len(r.Parts) == 2 {
				return true
			}
		}
		return false
	}
	if !torn(replayStream(t, dir, 0)) {
		t.Fatal("shard 0's stream is missing the cross-shard record: fault fired too early")
	}
	if torn(replayStream(t, dir, 3)) {
		t.Fatal("shard 3's stream has the cross-shard record: fault fired too late")
	}

	db = openShardDB(t, dir, 4)
	defer db.Close()
	sCheckState(t, db, m) // neither key 50 nor key 950 survives
}

// TestShardedCrashBetweenInstalls cuts a cross-shard commit after every
// stream's append but between the in-memory installs: the commit is durable
// everywhere, so reopen must surface it whole.
func TestShardedCrashBetweenInstalls(t *testing.T) {
	dir := t.TempDir()
	db := openShardDB(t, dir, 4)
	m := model{}
	sCommitInserts(t, db, m, 10, 260, 510, 760)

	errBoom := errors.New("injected crash between shard installs")
	db.Sharded().SetCommitFault(&txn.CommitFault{
		BetweenInstalls: func(i int) error { return errBoom },
	})
	tx := db.Begin()
	if _, err := tx.ApplyBatch([]table.Op{
		{Kind: table.OpInsert, Row: types.Row{types.Int(60), types.Str("v60"), types.Int(600)}},
		{Kind: table.OpInsert, Row: types.Row{types.Int(960), types.Str("v960"), types.Int(9600)}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, errBoom) {
		t.Fatalf("Commit through the fault = %v", err)
	}
	db.crash()

	m[60] = modelRow{V: "v60", N: 600}
	m[960] = modelRow{V: "v960", N: 9600}
	db = openShardDB(t, dir, 4)
	defer db.Close()
	sCheckState(t, db, m) // both keys present: all-or-nothing, durably "all"
}

// TestShardedCheckpointCrashPoints kills the store at every fault point of
// the sharded checkpoint sequence — including between two shards' image
// builds — and requires recovery to reconstruct exactly the committed state.
func TestShardedCheckpointCrashPoints(t *testing.T) {
	points := []string{
		faultBetweenShardCheckpoints,
		faultMidSegmentWrite,
		faultPreManifestSwap,
		faultPostSwapPreTruncate,
	}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			db := openShardDB(t, dir, 4)
			m := model{}
			sCommitInserts(t, db, m, 10, 20, 260, 270, 510, 760)
			sCommitInserts(t, db, m, 100, 600, 900) // cross-shard in the tail

			errBoom := errors.New("injected crash: " + point)
			fired := false
			db.fault = func(p string) error {
				if p == point {
					fired = true
					return errBoom
				}
				return nil
			}
			if err := db.Checkpoint(); !errors.Is(err, errBoom) {
				t.Fatalf("Checkpoint through the fault = %v", err)
			}
			if !fired {
				t.Fatalf("fault point %s never fired", point)
			}
			db.crash()

			db = openShardDB(t, dir, 4)
			sCheckState(t, db, m)
			// The next checkpoint completes and the state survives another
			// reopen off the fresh images.
			sCommitInserts(t, db, m, 30, 530)
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db = openShardDB(t, dir, 4)
			defer db.Close()
			sCheckState(t, db, m)
		})
	}
}

// TestShardedCheckpointTruncatesPerStream checkpoints a sharded store and
// verifies each stream's own freeze bar did the truncating: records at or
// below a shard's manifest LSN are gone from its stream.
func TestShardedCheckpointTruncatesPerStream(t *testing.T) {
	dir := t.TempDir()
	db := openShardDB(t, dir, 4)
	m := model{}
	sCommitInserts(t, db, m, 10, 260, 510, 760)
	sCommitInserts(t, db, m, 20, 270)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man := db.man
	if len(man.Shards) != 4 {
		t.Fatalf("manifest = %+v", man)
	}
	// Post-checkpoint commits stay in the streams; pre-checkpoint ones go.
	sCommitInserts(t, db, m, 30, 780)
	db.crash()
	for i := 0; i < 4; i++ {
		for _, rec := range replayStream(t, dir, i) {
			if rec.LSN <= man.Shards[i].LSN {
				t.Fatalf("shard %d stream kept LSN %d at or below its freeze bar %d", i, rec.LSN, man.Shards[i].LSN)
			}
		}
	}
	db = openShardDB(t, dir, 4)
	defer db.Close()
	sCheckState(t, db, m)
}
