package pdtstore_test

// One benchmark family per figure of the paper's evaluation (§4). These run
// at laptop-friendly sizes; cmd/pdtbench and cmd/tpchbench sweep the full
// parameter grids and print the paper-style series tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"pdtstore/internal/bench"
	"pdtstore/internal/engine"
	"pdtstore/internal/pdt"
	"pdtstore/internal/table"
	"pdtstore/internal/tpch"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// BenchmarkFig16_PDTMaintenance measures per-operation PDT update cost at
// growing tree sizes (Figure 16: insert vs modify vs delete, logarithmic in
// PDT size).
func BenchmarkFig16_PDTMaintenance(b *testing.B) {
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	}, []int{0})
	for _, size := range []int{10_000, 100_000} {
		size := size
		grow := func() (*pdt.PDT, int64) {
			p := pdt.New(schema, 0)
			visible := int64(size)
			for i := 0; i < size; i++ {
				rid := uint64(int64(i*7919) % (visible + 1))
				key := int64(1)<<40 + int64(i)
				if err := p.Insert(rid, types.Row{types.Int(key), types.Int(0)}); err != nil {
					b.Fatal(err)
				}
				visible++
			}
			return p, visible
		}
		b.Run(fmt.Sprintf("insert/size=%d", size), func(b *testing.B) {
			p, visible := grow()
			key := int64(1 << 50)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rid := uint64(int64(i*6271) % (visible + 1))
				key++
				if err := p.Insert(rid, types.Row{types.Int(key), types.Int(0)}); err != nil {
					b.Fatal(err)
				}
				visible++
			}
		})
		b.Run(fmt.Sprintf("modify/size=%d", size), func(b *testing.B) {
			p, visible := grow()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rid := uint64(int64(i*6271) % visible)
				if err := p.Modify(rid, 1, types.Int(int64(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("delete/size=%d", size), func(b *testing.B) {
			p, visible := grow()
			key := int64(1 << 50)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// keep cardinality stable: delete one, insert one (untimed
				// compensation would distort; both ops are timed and noted)
				rid := uint64(int64(i*6271) % visible)
				key++
				if err := p.Delete(rid, types.Row{types.Int(key)}); err != nil {
					b.Fatal(err)
				}
				if err := p.Insert(rid, types.Row{types.Int(key), types.Int(0)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig17_MergeScan measures merged projection scans of a 4-data-
// column table under growing update ratios, PDT vs VDT, int vs string keys
// (Figure 17).
func BenchmarkFig17_MergeScan(b *testing.B) {
	for _, strKeys := range []bool{false, true} {
		for _, ratio := range []float64{0, 2.5} {
			for _, mode := range []table.DeltaMode{table.ModePDT, table.ModeVDT} {
				kt := "int"
				if strKeys {
					kt = "str"
				}
				name := fmt.Sprintf("keys=%s/upd=%.1f/%v", kt, ratio, mode)
				b.Run(name, func(b *testing.B) {
					cfg := bench.ScanConfig{
						Tuples: 100_000, DataCols: 4, KeyCols: 1,
						StringKeys: strKeys, UpdatesPer100: ratio,
						Mode: mode, BlockRows: 8192,
					}
					tbl, err := bench.BuildScanTable(cfg)
					if err != nil {
						b.Fatal(err)
					}
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := bench.MeasureScan(tbl, cfg); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig18_MultiColumnKeys measures the same scan with 1- vs 4-column
// string keys (Figure 18: VDT merge cost grows with key arity and width;
// PDT cost does not).
func BenchmarkFig18_MultiColumnKeys(b *testing.B) {
	for _, keyCols := range []int{1, 4} {
		for _, mode := range []table.DeltaMode{table.ModePDT, table.ModeVDT} {
			name := fmt.Sprintf("keycols=%d/%v", keyCols, mode)
			b.Run(name, func(b *testing.B) {
				cfg := bench.ScanConfig{
					Tuples: 50_000, DataCols: 6 - keyCols, KeyCols: keyCols,
					StringKeys: true, UpdatesPer100: 1.5,
					Mode: mode, BlockRows: 8192,
				}
				tbl, err := bench.BuildScanTable(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := bench.MeasureScan(tbl, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig19_TPCH runs each of the 22 TPC-H queries under the three
// delta modes after two refresh streams (Figure 19's time panels; the I/O
// panels are printed by cmd/tpchbench).
func BenchmarkFig19_TPCH(b *testing.B) {
	dbs := map[table.DeltaMode]*tpch.DB{}
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModeVDT, table.ModePDT} {
		db, err := tpch.Load(0.005, mode, true, 4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.ApplyRefresh(2, 0.001); err != nil {
			b.Fatal(err)
		}
		dbs[mode] = db
	}
	for _, q := range tpch.Queries {
		for _, mode := range []table.DeltaMode{table.ModeNone, table.ModeVDT, table.ModePDT} {
			q, mode := q, mode
			b.Run(fmt.Sprintf("Q%02d/%v", q.ID, mode), func(b *testing.B) {
				db := dbs[mode]
				for i := 0; i < b.N; i++ {
					if _, err := q.Run(db); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScanPipeline measures the engine read pipeline on lineitem:
// projected (2-column) vs full-width scans and the TPC-H Q1 scan path, with
// allocs/op reported (cmd/pdtbench -fig scan sweeps the same cases and emits
// BENCH_scan.json with the seed baseline for comparison).
func BenchmarkScanPipeline(b *testing.B) {
	for _, mode := range []table.DeltaMode{table.ModeNone, table.ModePDT} {
		db, err := tpch.Load(0.005, mode, true, 4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := db.ApplyRefresh(2, 0.001); err != nil {
			b.Fatal(err)
		}
		li := db.Lineitem
		allCols := make([]int, li.Schema().NumCols())
		for i := range allCols {
			allCols[i] = i
		}
		drain := func(b *testing.B, cols []int) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := engine.Scan(li, cols...).Run(func(*vector.Batch, []uint32) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(fmt.Sprintf("projected-2col/%v", mode), func(b *testing.B) {
			drain(b, []int{tpch.LExtendedprice, tpch.LDiscount})
		})
		b.Run(fmt.Sprintf("full-width/%v", mode), func(b *testing.B) {
			drain(b, allCols)
		})
		b.Run(fmt.Sprintf("Q1/%v", mode), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tpch.Q1(db); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_Fanout sweeps the PDT fanout (the paper fixes F=8 for
// cache-line alignment; this quantifies that choice).
func BenchmarkAblation_Fanout(b *testing.B) {
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	}, []int{0})
	for _, fanout := range []int{4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("fanout=%d", fanout), func(b *testing.B) {
			p := pdt.New(schema, fanout)
			visible := int64(1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rid := uint64(int64(i*6271) % visible)
				if err := p.Insert(rid, types.Row{types.Int(int64(i)), types.Int(0)}); err != nil {
					b.Fatal(err)
				}
				visible++
			}
		})
	}
}

// BenchmarkAblation_SerializePropagate measures the commit-path transforms.
func BenchmarkAblation_SerializePropagate(b *testing.B) {
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "v", Kind: types.Int64},
	}, []int{0})
	mkTxn := func(base int64) *pdt.PDT {
		p := pdt.New(schema, 0)
		for i := int64(0); i < 500; i++ {
			if err := p.Insert(uint64(i), types.Row{types.Int(base + i*2), types.Int(0)}); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	tx := mkTxn(1_000_000)
	ty := mkTxn(9_000_000)
	b.Run("serialize-500v500", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tx.Serialize(ty); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("propagate-500", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			lower := mkTxn(1_000_000)
			b.StartTimer()
			if err := lower.Propagate(ty); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("copy-500", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = tx.Copy()
		}
	})
}

// BenchmarkWritePath measures the vectorized write path at smoke-test sizes:
// bulk vs per-entry propagate, the batched update API against row-at-a-time
// transactions, and the streaming checkpoint. cmd/pdtbench's -fig update
// runs the full-size profile and records BENCH_update.json.
func BenchmarkWritePath(b *testing.B) {
	base, delta, err := bench.BuildPropagatePair(5_000, 1_000)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("propagate-bulk-1k-into-5k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dst := base.Copy()
			b.StartTimer()
			if err := dst.Propagate(delta); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("propagate-entrywise-1k-into-5k", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dst := base.Copy()
			b.StartTimer()
			if err := dst.PropagateEntrywise(delta); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Table batches and checkpoints share the -fig update workload
	// generator (bench.LoadUpdateTable / bench.MixedOps), so these smoke
	// numbers stay comparable with the full profile.
	b.Run("table-apply-batch-128", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(1))
		nextOdd := int64(1)
		var tbl *table.Table
		for i := 0; i < b.N; i++ {
			if i%16 == 0 {
				b.StopTimer()
				var err error
				if tbl, err = bench.LoadUpdateTable(5_000, 1024, table.ModePDT); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			if _, err := tbl.ApplyBatch(bench.MixedOps(rng, 5_000, 128, &nextOdd)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checkpoint-5k", func(b *testing.B) {
		b.ReportAllocs()
		rng := rand.New(rand.NewSource(2))
		nextOdd := int64(1)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tbl, err := bench.LoadUpdateTable(5_000, 1024, table.ModePDT)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tbl.ApplyBatch(bench.MixedOps(rng, 5_000, 256, &nextOdd)); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := tbl.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
