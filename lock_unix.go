//go:build unix

package pdtstore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockEnforced reports whether lockDir actually excludes a second opener on
// this platform (tests gate their exclusivity assertions on it).
const lockEnforced = true

// lockDir takes an exclusive advisory flock on dir/LOCK, guarding the store
// against a second opener: two processes appending to the same WAL with
// independent LSN clocks, or checkpointing over each other's manifest, would
// corrupt the directory silently. The lock dies with the process, so a
// crashed owner never wedges the store.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("pdtstore: %s is already open (held LOCK): %w", dir, err)
	}
	return f, nil
}

func unlockDir(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
