// Inventory: the paper's running example (Figures 1-13), executed through
// the table layer with SQL-shaped updates — watch the table image and the
// PDT evolve through the three batches.
package main

import (
	"fmt"
	"log"

	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func row(store, prod string, isNew bool, qty int64) types.Row {
	return types.Row{types.Str(store), types.Str(prod), types.BoolVal(isNew), types.Int(qty)}
}

func main() {
	schema := types.MustSchema([]types.Column{
		{Name: "store", Kind: types.String},
		{Name: "prod", Kind: types.String},
		{Name: "new", Kind: types.Bool},
		{Name: "qty", Kind: types.Int64},
	}, []int{0, 1})

	// Figure 1: TABLE0.
	tbl, err := table.Load(schema, []types.Row{
		row("London", "chair", false, 30),
		row("London", "stool", false, 10),
		row("London", "table", false, 20),
		row("Paris", "rug", false, 1),
		row("Paris", "stool", false, 5),
	}, table.Options{Mode: table.ModePDT, Fanout: 2})
	if err != nil {
		log.Fatal(err)
	}
	print := func(label string) {
		fmt.Printf("\n=== %s ===\n", label)
		cols := []int{0, 1, 2, 3}
		src, err := tbl.Scan(cols, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		out := vector.NewBatch(tbl.Kinds(cols), 16)
		for {
			n, err := src.Next(out, 16)
			if err != nil {
				log.Fatal(err)
			}
			if n == 0 {
				break
			}
		}
		fmt.Println("rid | store  | prod  | new   | qty")
		for i := 0; i < out.Len(); i++ {
			fmt.Printf("%3d | %-6s | %-5s | %-5v | %3d\n", out.Rids[i],
				out.Vecs[0].S[i], out.Vecs[1].S[i], out.Vecs[2].Get(i).Bool(), out.Vecs[3].I[i])
		}
		fmt.Printf("\nPDT state: %s\n", tbl.PDT())
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	mustOK := func(ok bool, err error) {
		must(err)
		if !ok {
			log.Fatal("key not found")
		}
	}

	print("TABLE0 (Figure 1)")

	// BATCH1 (Figure 2): INSERT INTO inventory VALUES (...)
	must(tbl.Insert(row("Berlin", "table", true, 10)))
	must(tbl.Insert(row("Berlin", "cloth", true, 5)))
	must(tbl.Insert(row("Berlin", "chair", true, 20)))
	print("TABLE1 after BATCH1 (Figure 5); PDT1 = Figure 3")

	// BATCH2 (Figure 6): UPDATEs and DELETEs by key.
	key := func(store, prod string) types.Row {
		return types.Row{types.Str(store), types.Str(prod)}
	}
	mustOK(tbl.UpdateByKey(key("Berlin", "cloth"), 3, types.Int(1)))
	mustOK(tbl.UpdateByKey(key("London", "stool"), 3, types.Int(9)))
	mustOK(tbl.DeleteByKey(key("Berlin", "table")))
	mustOK(tbl.DeleteByKey(key("Paris", "rug")))
	print("TABLE2 after BATCH2 (Figure 9); PDT2 = Figure 7")

	// BATCH3 (Figure 10): more inserts, one of them between a ghost and its
	// predecessor — note (Paris,rack) receives the ghost-respecting SID 3.
	must(tbl.Insert(row("Paris", "rack", true, 4)))
	must(tbl.Insert(row("London", "rack", true, 4)))
	must(tbl.Insert(row("Berlin", "rack", true, 4)))
	print("TABLE3 after BATCH3 (Figure 13); PDT3 = Figure 11")

	// Range query from §2.1: SELECT qty FROM inventory
	// WHERE store='Paris' AND prod<'rug' — served via the sparse index,
	// which stays valid thanks to ghost-respecting SIDs.
	src, err := tbl.Scan([]int{0, 1, 3},
		types.Row{types.Str("Paris")}, types.Row{types.Str("Paris"), types.Str("rug")})
	if err != nil {
		log.Fatal(err)
	}
	out := vector.NewBatch(tbl.Kinds([]int{0, 1, 3}), 16)
	for {
		n, err := src.Next(out, 16)
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	fmt.Println("\nrange query store='Paris' AND prod<'rug':")
	for i := 0; i < out.Len(); i++ {
		if out.Vecs[0].S[i] == "Paris" && out.Vecs[1].S[i] < "rug" {
			fmt.Printf("  qty=%d (%s,%s)\n", out.Vecs[2].I[i], out.Vecs[0].S[i], out.Vecs[1].S[i])
		}
	}
}
