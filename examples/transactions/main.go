// Transactions: the three-layer PDT scheme of §3.3 — snapshot isolation
// without locks, optimistic conflict detection via Serialize, commit into
// the master Write-PDT, and crash recovery from the write-ahead log.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"

	"pdtstore/internal/table"
	"pdtstore/internal/txn"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
	"pdtstore/internal/wal"
)

func main() {
	schema := types.MustSchema([]types.Column{
		{Name: "account", Kind: types.Int64},
		{Name: "owner", Kind: types.String},
		{Name: "balance", Kind: types.Int64},
	}, []int{0})
	var rows []types.Row
	for i := int64(1); i <= 5; i++ {
		rows = append(rows, types.Row{types.Int(i), types.Str(fmt.Sprintf("acct-%d", i)), types.Int(100)})
	}
	tbl, err := table.Load(schema, rows, table.Options{Mode: table.ModePDT})
	if err != nil {
		log.Fatal(err)
	}
	var logBuf bytes.Buffer
	mgr, err := txn.NewManager(tbl, txn.Options{Log: wal.NewWriter(&logBuf)})
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot isolation: b, started before a commits, keeps the old view.
	a := mgr.Begin()
	b := mgr.Begin()
	if _, err := a.UpdateByKey(types.Row{types.Int(1)}, 2, types.Int(175)); err != nil {
		log.Fatal(err)
	}
	if err := a.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("a committed: balance(1) := 175")
	if bal := balance(b, 1); bal != 100 {
		log.Fatalf("b sees %d; snapshot isolation broken", bal)
	}
	fmt.Println("b (older snapshot) still sees balance(1) = 100")

	// b writes the same column a wrote: commit must abort.
	if _, err := b.UpdateByKey(types.Row{types.Int(1)}, 2, types.Int(999)); err != nil {
		log.Fatal(err)
	}
	if err := b.Commit(); errors.Is(err, txn.ErrConflict) {
		fmt.Println("b aborted: write-write conflict on account 1 (as it must)")
	} else {
		log.Fatalf("expected a conflict, got %v", err)
	}

	// Different columns of the same tuple reconcile at commit.
	c := mgr.Begin()
	d := mgr.Begin()
	if _, err := c.UpdateByKey(types.Row{types.Int(2)}, 2, types.Int(42)); err != nil {
		log.Fatal(err)
	}
	if _, err := d.UpdateByKey(types.Row{types.Int(2)}, 1, types.Str("alice")); err != nil {
		log.Fatal(err)
	}
	if err := c.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := d.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("c and d committed: disjoint columns of account 2 reconciled")

	// Concurrent inserts of different keys serialize cleanly.
	e := mgr.Begin()
	f := mgr.Begin()
	if err := e.Insert(types.Row{types.Int(10), types.Str("eve"), types.Int(7)}); err != nil {
		log.Fatal(err)
	}
	if err := f.Insert(types.Row{types.Int(11), types.Str("frank"), types.Int(8)}); err != nil {
		log.Fatal(err)
	}
	if err := e.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("e and f committed: concurrent inserts of different keys")

	final := mgr.Begin()
	fmt.Printf("\nfinal: balance(1)=%d, account 2 owner/balance via merged view = %v\n",
		balance(final, 1), accountRow(final, 2))
	if err := final.Abort(); err != nil {
		log.Fatal(err)
	}

	// Crash recovery: rebuild from the WAL over the same initial table.
	tbl2, err := table.Load(schema, rows, table.Options{Mode: table.ModePDT})
	if err != nil {
		log.Fatal(err)
	}
	mgr2, err := txn.NewManager(tbl2, txn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	records, err := wal.Replay(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr2.Recover(records); err != nil {
		log.Fatal(err)
	}
	check := mgr2.Begin()
	fmt.Printf("after WAL replay (%d commit records): balance(1)=%d, account 2 = %v\n",
		len(records), balance(check, 1), accountRow(check, 2))
	if balance(check, 1) != 175 {
		log.Fatal("recovery diverged!")
	}
	if err := check.Abort(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered state identical — ACID via three PDT layers plus a WAL")
}

// accountRow fetches one account through a transaction's merged view.
func accountRow(t *txn.Txn, account int64) types.Row {
	key := types.Row{types.Int(account)}
	src, err := t.Scan([]int{0, 1, 2}, key, key)
	if err != nil {
		log.Fatal(err)
	}
	out := vector.NewBatch([]types.Kind{types.Int64, types.String, types.Int64}, 16)
	for {
		n, err := src.Next(out, 16)
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	for i := 0; i < out.Len(); i++ {
		if out.Vecs[0].I[i] == account {
			return out.Row(i)
		}
	}
	log.Fatalf("account %d not found", account)
	return nil
}

func balance(t *txn.Txn, account int64) int64 {
	return accountRow(t, account)[2].I
}
