// Selective queries: zone maps and secondary indexes turning selective
// predicates into block skips — open a store with IndexColumns, checkpoint an
// image, and watch DB.Stats' skip counters attribute each query's avoided
// I/O to the zone-map or the index path.
package main

import (
	"fmt"
	"log"
	"os"

	"pdtstore"
	"pdtstore/internal/engine"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func main() {
	dir, err := os.MkdirTemp("", "pdt-selective-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	schema := types.MustSchema([]types.Column{
		{Name: "sku", Kind: types.Int64},    // sort key: clustered, zones answer ranges
		{Name: "batch", Kind: types.String}, // scattered low-cardinality: index answers equality
		{Name: "qty", Kind: types.Int64},
	}, []int{0})

	// IndexColumns opts the batch and qty columns into secondary block
	// indexes: per-block value summaries maintained at checkpoint time.
	db, err := pdtstore.Open(dir, pdtstore.Options{
		Schema: schema, BlockRows: 256, Compressed: true,
		IndexColumns: []int{1, 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// 16k rows, 64 blocks. SKUs are clustered (the sort key); batch labels
	// are hash-scattered across 2000 values, so any one label appears in only
	// a few blocks — but every block's lexicographic [min, max] spans almost
	// the whole label space, which is exactly where zone maps go blind.
	tx := db.Begin()
	for i := int64(0); i < 16384; i++ {
		if err := tx.Insert(types.Row{
			types.Int(i),
			types.Str(fmt.Sprintf("batch-%04d", (i*7919+13)%2000)),
			types.Int(i % 977),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	// The checkpoint builds the stable image — zone maps land in the segment
	// footer, the secondary index is (re)built over the new blocks.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	count := func(p *engine.Plan) int {
		n := 0
		if err := p.Run(func(b *vector.Batch, sel []uint32) error {
			n += len(sel)
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		return n
	}
	report := func(label string, rows int, before pdtstore.Stats) {
		after := db.Stats()
		fmt.Printf("%-34s %5d rows  %3d blocks zone-skipped  %3d index-skipped\n",
			label, rows,
			after.ZoneSkippedBlocks-before.ZoneSkippedBlocks,
			after.IndexSkippedBlocks-before.IndexSkippedBlocks)
	}

	// A clustered range predicate: the sort key's zone maps exclude every
	// block whose [min, max] misses the range — no index needed.
	q := db.Begin()
	before := db.Stats()
	n := count(engine.Scan(q, 0, 1, 2).FilterInt64Range(0, 8000, 8100))
	report("sku BETWEEN 8000 AND 8100", n, before)
	q.Abort()

	// An equality probe on the scattered batch column: its zones are wide
	// (every block spans most of the label space lexicographically), so the
	// skips come from the secondary index's per-block value summaries.
	q = db.Begin()
	before = db.Stats()
	n = count(engine.Scan(q, 0, 1).FilterStrEq(1, "batch-0042"))
	report(`batch = "batch-0042"`, n, before)
	q.Abort()

	// Combined: the range narrows via zones, the label via the index.
	q = db.Begin()
	before = db.Stats()
	n = count(engine.Scan(q, 0, 1, 2).
		FilterInt64Range(0, 0, 6000).FilterStrEq(1, "batch-0017"))
	report(`sku <= 6000 AND batch = "batch-0017"`, n, before)
	q.Abort()

	// A full scan skips nothing — the counters are the access-path witness.
	q = db.Begin()
	before = db.Stats()
	n = count(engine.Scan(q, 0))
	report("full scan", n, before)
	q.Abort()
}
