// Warehouse: the paper's data-warehousing scenario end to end — a TPC-H
// database under a trickle of refresh updates, analytical queries answered
// through positional merging, the PDT-vs-VDT I/O asymmetry made visible, and
// a checkpoint folding the deltas back into the stable image.
package main

import (
	"fmt"
	"log"

	"pdtstore/internal/table"
	"pdtstore/internal/tpch"
)

func main() {
	const sf = 0.005

	fmt.Printf("loading TPC-H SF-%g twice: once with PDT deltas, once with VDT deltas...\n", sf)
	pdtDB, err := tpch.Load(sf, table.ModePDT, true, 4096)
	if err != nil {
		log.Fatal(err)
	}
	vdtDB, err := tpch.Load(sf, table.ModeVDT, true, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("orders: %d rows, lineitem: %d rows\n\n", pdtDB.Orders.NRows(), pdtDB.Lineitem.NRows())

	// The paper's update workload: two refresh streams, each inserting and
	// deleting ~0.1% of the orders, scattered across both big tables.
	for _, db := range []*tpch.DB{pdtDB, vdtDB} {
		if err := db.ApplyRefresh(2, 0.001); err != nil {
			log.Fatal(err)
		}
	}
	ins, del, mod := pdtDB.Lineitem.PDT().Counts()
	fmt.Printf("after refresh: lineitem PDT holds %d inserts, %d deletes, %d modifies (%d bytes)\n",
		ins, del, mod, pdtDB.Lineitem.DeltaMemBytes())
	vi, vd := pdtDB.Lineitem.NRows(), vdtDB.Lineitem.NRows()
	fmt.Printf("visible lineitem rows: PDT=%d VDT=%d (must agree)\n\n", vi, vd)

	// Run two scan-heavy queries in both modes, comparing answers and I/O.
	for _, q := range []tpch.Query{tpch.Queries[0], tpch.Queries[5]} { // Q1, Q6
		fmt.Printf("--- Q%d (%s) ---\n", q.ID, q.Name)
		var answers [2]string
		for i, db := range []*tpch.DB{pdtDB, vdtDB} {
			db.Device.DropCaches()
			db.Device.ResetStats()
			res, err := q.Run(db)
			if err != nil {
				log.Fatal(err)
			}
			bytes, reads := db.Device.Stats()
			mode := []string{"PDT", "VDT"}[i]
			fmt.Printf("%s: %6.2f MB I/O in %d block reads\n", mode, float64(bytes)/1e6, reads)
			answers[i] = res
		}
		if answers[0] != answers[1] {
			log.Fatal("answers diverged between PDT and VDT!")
		}
		fmt.Printf("answers identical; first line: %.70s\n\n", answers[0])
	}

	// Checkpoint the PDT database: deltas fold into a fresh stable image.
	before := pdtDB.Lineitem.NRows()
	if err := pdtDB.Orders.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	if err := pdtDB.Lineitem.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpointed: lineitem stable image now %d rows (was %d visible), PDT empty=%v\n",
		pdtDB.Lineitem.Store().NRows(), before, pdtDB.Lineitem.PDT().Empty())
}
