// Durable: the full public API in one sitting — Open a store, commit through
// the unified Tx interface, watch the cost-based checkpoint scheduler keep
// recovery cheap, and inspect generations through Stats.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"pdtstore"
	"pdtstore/internal/types"
)

func main() {
	dir, err := os.MkdirTemp("", "pdt-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	schema := types.MustSchema([]types.Column{
		{Name: "sku", Kind: types.Int64},
		{Name: "name", Kind: types.String},
		{Name: "qty", Kind: types.Int64},
	}, []int{0})

	// Auto-checkpointing: a background scheduler weighs WAL replay cost
	// against block rewrite cost and checkpoints when replay would be the
	// more expensive side. Small deltas become incremental generations.
	db, err := pdtstore.Open(dir, pdtstore.Options{
		Schema:    schema,
		BlockRows: 64,
		Checkpoint: pdtstore.CheckpointOptions{
			Auto:     true,
			Interval: 5 * time.Millisecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Bulk load through a transaction.
	tx := db.Begin()
	for i := 0; i < 640; i++ {
		if err := tx.Insert(types.Row{
			types.Int(int64(i)),
			types.Str(fmt.Sprintf("part-%04d", i)),
			types.Int(100),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}

	// A trickle of point updates: each commit dirties a handful of blocks,
	// so subsequent checkpoints write only those blocks into a new
	// generation and reference the rest from the base segment.
	for round := 0; round < 20; round++ {
		tx := db.Begin()
		key := types.Row{types.Int(int64(round * 31 % 640))}
		if _, err := tx.UpdateByKey(key, 2, types.Int(int64(round))); err != nil {
			log.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Point read back through the same interface.
	tx = db.Begin()
	if _, row, found, err := tx.FindByKey(types.Row{types.Int(589)}); err != nil || !found {
		log.Fatalf("find: found=%v err=%v", found, err)
	} else {
		fmt.Printf("sku 589 -> %v\n", row)
	}
	if err := tx.Abort(); err != nil {
		log.Fatal(err)
	}

	// Stats is the one window into durability state: WAL tail, checkpoint
	// generation chain, and what the scheduler last decided per shard.
	st := db.Stats()
	fmt.Printf("generation %d, %d shard(s)\n", st.Generation, st.Shards)
	for i, sh := range st.Shard {
		fmt.Printf("  shard %d: lsn=%d frozen=%d wal-tail=%d records, %d generation(s), last decision %q\n",
			i, sh.LSN, sh.FreezeLSN, sh.WALRecords, sh.Generations, sh.LastDecision.Mode)
		for _, seg := range sh.Segments {
			fmt.Printf("    segment %s: %d/%d blocks live\n", seg.Name, seg.LiveBlocks, seg.TotalBlocks)
		}
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}

	// Reopen: recovery resolves blocks across the generation chain and
	// replays only the short WAL tail past the last freeze.
	start := time.Now()
	db2, err := pdtstore.Open(dir, pdtstore.Options{Schema: schema, BlockRows: 64})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	fmt.Printf("cold reopen in %v at lsn %d\n", time.Since(start), db2.Stats().Shard[0].LSN)
}
