// Quickstart: create an ordered table with PDT update handling, run updates,
// and scan the merged image — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"pdtstore/internal/table"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

func main() {
	// An ordered table: products sorted (and keyed) by SKU.
	schema := types.MustSchema([]types.Column{
		{Name: "sku", Kind: types.Int64},
		{Name: "name", Kind: types.String},
		{Name: "price", Kind: types.Float64},
	}, []int{0})

	// Bulk-load the stable image (rows must arrive in sort-key order).
	var rows []types.Row
	for i := int64(1); i <= 8; i++ {
		rows = append(rows, types.Row{
			types.Int(i * 100),
			types.Str(fmt.Sprintf("widget-%d", i)),
			types.Float(float64(i) * 9.99),
		})
	}
	tbl, err := table.Load(schema, rows, table.Options{Mode: table.ModePDT})
	if err != nil {
		log.Fatal(err)
	}

	// Updates buffer in the PDT; the stable image is never touched.
	if err := tbl.Insert(types.Row{types.Int(250), types.Str("gadget"), types.Float(4.99)}); err != nil {
		log.Fatal(err)
	}
	if _, err := tbl.UpdateByKey(types.Row{types.Int(300)}, 2, types.Float(1.50)); err != nil {
		log.Fatal(err)
	}
	if _, err := tbl.DeleteByKey(types.Row{types.Int(700)}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("visible rows: %d, PDT entries: %d, delta memory: %d bytes\n\n",
		tbl.NRows(), tbl.PDT().Count(), tbl.DeltaMemBytes())

	// Scans merge the updates in by position — no key comparisons, and only
	// the projected columns are read from "disk".
	cols := []int{0, 1, 2}
	src, err := tbl.Scan(cols, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	out := vector.NewBatch(tbl.Kinds(cols), 16)
	for {
		n, err := src.Next(out, 16)
		if err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	fmt.Println("rid | sku  | name      | price")
	for i := 0; i < out.Len(); i++ {
		fmt.Printf("%3d | %-4d | %-9s | %6.2f\n",
			out.Rids[i], out.Vecs[0].I[i], out.Vecs[1].S[i], out.Vecs[2].F[i])
	}

	// Checkpoint: fold the deltas into a fresh stable image.
	if err := tbl.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter checkpoint: stable rows=%d, PDT entries=%d\n",
		tbl.Store().NRows(), tbl.PDT().Count())
}
