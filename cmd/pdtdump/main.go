// Command pdtdump walks the paper's running example (Figures 1-13),
// printing the PDT's entry layout, tree shape and memory accounting after
// each update batch, and runs the structural validator — a quick way to see
// the data structure at work.
package main

import (
	"fmt"
	"os"

	"pdtstore/internal/pdt"
	"pdtstore/internal/types"
)

func main() {
	schema := types.MustSchema([]types.Column{
		{Name: "store", Kind: types.String},
		{Name: "prod", Kind: types.String},
		{Name: "new", Kind: types.Bool},
		{Name: "qty", Kind: types.Int64},
	}, []int{0, 1})
	p := pdt.New(schema, 2) // fan-out 2, like the paper's drawings

	step := func(label string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "pdtdump: %s: %v\n", label, err)
			os.Exit(1)
		}
		if err := p.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "pdtdump: invariants broken after %s: %v\n", label, err)
			os.Exit(1)
		}
	}
	row := func(store, prod string, isNew bool, qty int64) types.Row {
		return types.Row{types.Str(store), types.Str(prod), types.BoolVal(isNew), types.Int(qty)}
	}
	show := func(name string) {
		depth, leaves := p.DepthAndLeaves()
		ins, del, mod := p.Counts()
		fmt.Printf("\n== %s ==\n%s\n", name, p)
		fmt.Printf("tree: depth=%d leaves=%d | ins=%d del=%d mod=%d | delta=%+d | mem=%dB\n",
			depth, leaves, ins, del, mod, p.Delta(), p.MemBytes())
	}

	fmt.Println("TABLE0 = inventory(store,prod,new,qty) ORDER BY (store,prod), 5 stable tuples")

	// BATCH1 (Figure 2)
	step("insert Berlin table", func() error { return p.Insert(0, row("Berlin", "table", true, 10)) })
	step("insert Berlin cloth", func() error { return p.Insert(0, row("Berlin", "cloth", true, 5)) })
	step("insert Berlin chair", func() error { return p.Insert(0, row("Berlin", "chair", true, 20)) })
	show("PDT1 after BATCH1 (Figure 3)")

	// BATCH2 (Figure 6)
	step("qty=1 for Berlin cloth", func() error { return p.Modify(1, 3, types.Int(1)) })
	step("qty=9 for London stool", func() error { return p.Modify(4, 3, types.Int(9)) })
	step("delete Berlin table", func() error { return p.Delete(2, types.Row{types.Str("Berlin"), types.Str("table")}) })
	step("delete Paris rug", func() error { return p.Delete(5, types.Row{types.Str("Paris"), types.Str("rug")}) })
	show("PDT2 after BATCH2 (Figure 7)")

	// BATCH3 (Figure 10)
	step("insert Paris rack", func() error { return p.Insert(5, row("Paris", "rack", true, 4)) })
	step("insert London rack", func() error { return p.Insert(3, row("London", "rack", true, 4)) })
	step("insert Berlin rack", func() error { return p.Insert(2, row("Berlin", "rack", true, 4)) })
	show("PDT3 after BATCH3 (Figure 11)")

	fmt.Println("\nAll invariants hold (ordering, chains, deltas, separators, counters).")
}
