// Command pdtbench regenerates the paper's microbenchmark figures plus the
// engine's scan-pipeline profile:
//
//	pdtbench -fig 16 [-max 1000000]          PDT maintenance cost vs size
//	pdtbench -fig 17 [-n 1000000]            MergeScan scaling & key type
//	pdtbench -fig 18 [-n 1000000]            single- vs multi-column keys
//	pdtbench -fig scan [-json BENCH_scan.json] [-workers 1,2,4,8] [-prows 1000000]
//	                                         engine scan throughput + allocs/op,
//	                                         projected vs full-width, the
//	                                         TPC-H Q1 scan path vs the seed,
//	                                         and the morsel-parallel worker
//	                                         sweep (cold GB/s with modeled
//	                                         per-block read latency, hot GB/s,
//	                                         speedup vs 1 worker)
//	pdtbench -fig update [-json BENCH_update.json]
//	                                         write-path profile: propagate
//	                                         (bulk vs per-entry), commit+WAL,
//	                                         txn batch vs per-op, checkpoint,
//	                                         and update throughput for
//	                                         PDT vs VDT vs in-place
//	pdtbench -fig online [-json BENCH_update.json]
//	                                         online maintenance: a steady
//	                                         commit stream racing a concurrent
//	                                         checkpoint vs the stop-the-world
//	                                         baseline — commits/sec, mean
//	                                         commit latency, max stall, and
//	                                         checkpoint duration per mode
//	pdtbench -fig recovery [-rows 20000] [-json BENCH_update.json]
//	                                         durability: cold Open (manifest +
//	                                         segment + WAL replay) time and
//	                                         durable checkpoint cost vs WAL
//	                                         tail length, plus fsynced commit
//	                                         latency and log size per tail
//	pdtbench -fig commit [-writers 1,8,64] [-commits 50] [-barriers 0,2000]
//	                     [-shards 1,4] [-json BENCH_update.json]
//	                                         group commit: commits/s, commit
//	                                         latency percentiles and fsync
//	                                         counts vs concurrent writers,
//	                                         barrier latency and shard count
//	                                         on durable logs — the sequencer's
//	                                         batching vs the per-commit-fsync
//	                                         baseline, and shard-per-core
//	                                         writes (one sequencer + WAL
//	                                         stream per key-range shard)
//	                                         vs the single-sequencer path
//
// Output is a plain-text table with one row per parameter combination,
// mirroring the series of the corresponding figure; -fig scan and
// -fig update additionally write machine-readable JSON reports, and
// -fig online, -fig recovery and -fig commit merge their rows into the
// update report's "online", "recovery" and "commit" sections.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"pdtstore/internal/bench"
	"pdtstore/internal/table"
)

func main() {
	fig := flag.String("fig", "16", "figure to regenerate: 16, 17, 18 or scan")
	n := flag.Int("n", 1_000_000, "table size for figures 17/18")
	maxEntries := flag.Int("max", 1_000_000, "PDT size to grow to for figure 16")
	fanout := flag.Int("fanout", 8, "PDT fan-out")
	blockRows := flag.Int("blockrows", 8192, "values per column block")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for -fig scan")
	jsonPath := flag.String("json", "", "write -fig scan results to this JSON file")
	rows := flag.Int("rows", 0, "base table rows for -fig recovery (0 = default)")
	tails := flag.String("tails", "", "comma-separated WAL tail lengths for -fig recovery")
	writers := flag.String("writers", "", "comma-separated writer counts for -fig commit")
	shards := flag.String("shards", "", "comma-separated shard counts for -fig commit (default 1 = unsharded)")
	workers := flag.String("workers", "", "comma-separated scan worker counts for -fig scan (default 1,2,4,8)")
	prows := flag.Int("prows", 0, "table rows for the -fig scan parallel sweep (0 = 1M)")
	commits := flag.Int("commits", 0, "commits per writer for -fig commit (0 = default)")
	barriers := flag.String("barriers", "", "comma-separated barrier latencies in us for -fig commit (default 0,2000)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the figure run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the figure run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
			}
		}()
	}

	switch *fig {
	case "16":
		runFig16(*maxEntries, *fanout)
	case "17":
		runFig17(*n, *blockRows)
	case "18":
		runFig18(*n, *blockRows)
	case "scan":
		runScan(*sf, *workers, *prows, *jsonPath)
	case "lookup":
		runLookup(*prows, *jsonPath)
	case "update":
		runUpdate(*jsonPath)
	case "online":
		runOnline(*jsonPath)
	case "recovery":
		runRecovery(*rows, *tails, *jsonPath)
	case "commit":
		runCommit(*writers, *barriers, *shards, *commits, *jsonPath)
	default:
		fmt.Fprintf(os.Stderr, "pdtbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

// seedUpdateBaseline records the write path as measured on the tree before
// the vectorized write path landed (commit 0104b6c: per-entry Propagate,
// cloning Dump, allocating WAL encode, per-row checkpoint builder, per-op
// transactions), with the same workload generator and sizes runUpdate uses,
// so regenerated reports keep the before/after comparison.
var seedUpdateBaseline = []bench.UpdateRow{
	{Name: "propagate/10k-into-50k", Mode: "seed", NsPerOp: 9536402, BytesPerOp: 6101488, AllocsPerOp: 53793},
	{Name: "commit+propagate/200-into-2k", Mode: "seed", NsPerOp: 210803, BytesPerOp: 234816, AllocsPerOp: 1622},
	{Name: "txn/per-op/64", Mode: "seed", NsPerOp: 22375873, BytesPerOp: 38505465, AllocsPerOp: 185185},
	{Name: "checkpoint/50k+2k", Mode: "seed", NsPerOp: 3271424, BytesPerOp: 7557888, AllocsPerOp: 345},
}

func runUpdate(jsonPath string) {
	cfg := bench.UpdateConfig{}
	rows, err := bench.UpdateProfile(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Write path: propagate / commit / txn / checkpoint / throughput")
	fmt.Printf("%-32s %12s %12s %12s %12s %14s\n",
		"case", "mode", "ms/op", "KB/op", "allocs/op", "upd/s")
	printUpd := func(r bench.UpdateRow) {
		upd := "-"
		if r.UpdatesPerSec > 0 {
			upd = fmt.Sprintf("%.0f", r.UpdatesPerSec)
		}
		fmt.Printf("%-32s %12s %12.3f %12.1f %12d %14s\n",
			r.Name, r.Mode, r.NsPerOp/1e6, float64(r.BytesPerOp)/1024, r.AllocsPerOp, upd)
	}
	for _, r := range rows {
		printUpd(r)
	}
	fmt.Println("-- seed baseline (pre-vectorized write path) --")
	for _, r := range seedUpdateBaseline {
		printUpd(r)
	}
	if jsonPath == "" {
		return
	}
	if err := mergeReportSections(jsonPath, map[string]any{
		"seed_baseline": seedUpdateBaseline,
		"results":       rows,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: writing %s: %v\n", jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonPath)
}

// hostHeader is the run-environment header stamped into every JSON report:
// the figures move with the machine, so a report without the host's shape is
// not reproducible.
type hostHeader struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

func currentHost() hostHeader {
	return hostHeader{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// mergeReportSections rewrites the given top-level sections of a JSON report
// file, preserving every other section (so -fig update and -fig online can
// share BENCH_update.json without clobbering each other).
func mergeReportSections(path string, sections map[string]any) error {
	report := map[string]json.RawMessage{}
	switch data, err := os.ReadFile(path); {
	case err == nil:
		if err := json.Unmarshal(data, &report); err != nil {
			return fmt.Errorf("parsing existing report: %w", err)
		}
	case !os.IsNotExist(err):
		// An existing-but-unreadable report must not be clobbered with only
		// the new sections.
		return err
	}
	// Every write refreshes the host header: the sections being merged were
	// measured on this machine, whatever an older header said.
	sections["host"] = currentHost()
	for key, v := range sections {
		enc, err := json.Marshal(v)
		if err != nil {
			return err
		}
		report[key] = enc
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func runOnline(jsonPath string) {
	rows, err := bench.OnlineProfile(bench.OnlineConfig{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Online maintenance: commit stream vs concurrent checkpoint")
	fmt.Printf("%-28s %12s %10s %14s %14s %14s\n",
		"case", "mode", "commits/s", "mean commit us", "max stall ms", "checkpoint ms")
	for _, r := range rows {
		fmt.Printf("%-28s %12s %10.0f %14.1f %14.2f %14.2f\n",
			r.Name, r.Mode, r.CommitsPerSec, r.MeanCommitUs, r.MaxStallMs, r.CheckpointMs)
	}
	if jsonPath == "" {
		return
	}
	// Merge into the update report (BENCH_update.json gains an "online"
	// section) without disturbing its other sections.
	if err := mergeReportSections(jsonPath, map[string]any{"online": rows}); err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: writing %s: %v\n", jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonPath)
}

func runCommit(writersCSV, barriersCSV, shardsCSV string, commitsPerWriter int, jsonPath string) {
	cfg := bench.CommitBenchConfig{CommitsPerWriter: commitsPerWriter}
	if writersCSV != "" {
		for _, part := range strings.Split(writersCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "pdtbench: bad -writers value %q\n", part)
				os.Exit(2)
			}
			cfg.Writers = append(cfg.Writers, v)
		}
	}
	if barriersCSV != "" {
		for _, part := range strings.Split(barriersCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "pdtbench: bad -barriers value %q\n", part)
				os.Exit(2)
			}
			cfg.Barriers = append(cfg.Barriers, time.Duration(v)*time.Microsecond)
		}
	}
	if shardsCSV != "" {
		for _, part := range strings.Split(shardsCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "pdtbench: bad -shards value %q\n", part)
				os.Exit(2)
			}
			cfg.Shards = append(cfg.Shards, v)
		}
	}
	rows, err := bench.CommitProfile(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Group commit: durable commit throughput vs concurrent writers and barrier latency")
	fmt.Printf("%-32s %12s %9s %8s %11s %10s %10s %10s\n",
		"case", "mode", "commits", "fsyncs", "commits/s", "p50 us", "p95 us", "p99 us")
	for _, r := range rows {
		fmt.Printf("%-32s %12s %9d %8d %11.0f %10.1f %10.1f %10.1f\n",
			r.Name, r.Mode, r.Commits, r.Fsyncs, r.CommitsPerSec, r.P50Us, r.P95Us, r.P99Us)
	}
	if jsonPath == "" {
		return
	}
	// A run with a shards axis lands in its own section, keeping the
	// single-sequencer "commit" history intact as the baseline; its
	// shards=1 rows are the same-run unsharded reference.
	section := "commit"
	for _, s := range cfg.Shards {
		if s > 1 {
			section = "commit_sharded"
		}
	}
	if err := mergeReportSections(jsonPath, map[string]any{section: rows}); err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: writing %s: %v\n", jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonPath)
}

func runRecovery(rows int, tails, jsonPath string) {
	cfg := bench.RecoveryConfig{Rows: rows}
	if tails != "" {
		for _, part := range strings.Split(tails, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "pdtbench: bad -tails value %q: %v\n", part, err)
				os.Exit(2)
			}
			cfg.Tails = append(cfg.Tails, v)
		}
	}
	pts, err := bench.RecoveryProfile(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Durability: cold open/replay and checkpoint cost vs WAL tail length")
	fmt.Printf("%12s %12s %10s %12s %14s %14s %14s %14s\n",
		"tail commits", "WAL KB", "WAL files", "open ms", "checkpoint ms", "inc ckpt ms", "auto open ms", "commit us")
	for _, p := range pts {
		fmt.Printf("%12d %12.1f %10d %12.2f %14.2f %14.2f %14.2f %14.1f\n",
			p.TailCommits, float64(p.WALBytes)/1024, p.WALFiles, p.OpenMs, p.CheckpointMs,
			p.IncCheckpointMs, p.AutoOpenMs, p.CommitUs)
	}
	incCfg := bench.RecoveryIncConfig{}
	if rows > 0 {
		incCfg.Rows = rows * 10
	}
	incPts, err := bench.RecoveryIncrementalProfile(incCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Incremental checkpoints: cost vs dirtied fraction of a fixed image")
	fmt.Printf("%10s %12s %12s %12s %13s %10s %10s %9s\n",
		"dirty frac", "updated rows", "dirty blocks", "total blocks", "mode", "full ms", "inc ms", "speedup")
	for _, p := range incPts {
		fmt.Printf("%10g %12d %12d %12d %13s %10.2f %10.2f %8.1fx\n",
			p.DirtyFrac, p.UpdatedRows, p.DirtyBlocks, p.TotalBlocks, p.Mode, p.FullMs, p.IncMs, p.Speedup)
	}
	if jsonPath == "" {
		return
	}
	if err := mergeReportSections(jsonPath, map[string]any{
		"recovery":             pts,
		"recovery_incremental": incPts,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: writing %s: %v\n", jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonPath)
}

// seedQ1Baseline records the TPC-H Q1 scan path as measured on the seed tree
// (commit efd3739, before the engine refactor) with the same configuration
// runScan uses (SF 0.01, compressed, 4096-row blocks, 2×0.001 refresh
// streams), so regenerated reports keep the before/after comparison.
var seedQ1Baseline = []bench.ScanAllocRow{
	{Name: "tpch/Q1", Mode: "none", Rows: 60733, NsPerOp: 5692090, BytesPerOp: 4715219, AllocsPerOp: 60203},
	{Name: "tpch/Q1", Mode: "PDT", Rows: 60731, NsPerOp: 6139847, BytesPerOp: 4802248, AllocsPerOp: 60224},
}

func runScan(sf float64, workersCSV string, prows int, jsonPath string) {
	cfg := bench.ScanAllocConfig{SF: sf, BlockRows: 4096, Streams: 2, UpdateFrac: 0.001}
	rows, err := bench.ScanAllocProfile(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Engine scan pipeline: SF %g, projected vs full-width, hot buffer pool\n", sf)
	fmt.Printf("%-26s %6s %6s %10s %12s %12s %12s\n",
		"case", "mode", "cols", "rows/op", "ms/op", "Mrows/s", "allocs/op")
	for _, r := range rows {
		fmt.Printf("%-26s %6s %6d %10d %12.2f %12.1f %12d\n",
			r.Name, r.Mode, r.Cols, r.Rows, r.NsPerOp/1e6, r.MRowsPerSec, r.AllocsPerOp)
	}
	// The seed baseline was measured at SF 0.01; at any other scale factor
	// the numbers are not comparable, so it is omitted. The seed rows predate
	// the throughput column; derive it from their recorded ns/op.
	baseline := seedQ1Baseline
	if sf != 0.01 {
		baseline = nil
	}
	baseline = bench.FillThroughput(baseline)
	for _, s := range baseline {
		fmt.Printf("%-26s %6s %6s %10d %12.2f %12.1f %12d   (seed baseline)\n",
			s.Name, s.Mode, "-", s.Rows, s.NsPerOp/1e6, s.MRowsPerSec, s.AllocsPerOp)
	}

	pcfg := bench.ParallelScanConfig{Tuples: prows}
	if workersCSV != "" {
		for _, part := range strings.Split(workersCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 1 {
				fmt.Fprintf(os.Stderr, "pdtbench: bad -workers value %q\n", part)
				os.Exit(2)
			}
			pcfg.Workers = append(pcfg.Workers, v)
		}
	}
	prowsEff := pcfg.Tuples
	if prowsEff == 0 {
		prowsEff = 1_000_000
	}
	fmt.Printf("\nParallel scan sweep: %d rows, 4 data cols, cold = dropped caches + modeled per-block read latency\n", prowsEff)
	prt, err := bench.ParallelScanProfile(pcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%6s %8s %12s %10s %8s %12s %10s %8s\n",
		"mode", "workers", "cold ms", "cold GB/s", "x1", "hot ms", "hot GB/s", "x1")
	for _, r := range prt {
		fmt.Printf("%6s %8d %12.2f %10.3f %7.2fx %12.2f %10.3f %7.2fx\n",
			r.Mode, r.Workers, r.ColdNS/1e6, r.ColdGBs, r.ColdSpeedup,
			r.HotNS/1e6, r.HotGBs, r.HotSpeedup)
	}

	if jsonPath == "" {
		return
	}
	if err := mergeReportSections(jsonPath, map[string]any{
		"config":        cfg,
		"seed_baseline": baseline,
		"results":       rows,
		"parallel":      prt,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: writing %s: %v\n", jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonPath)
}

// runLookup records the access-path figure: selective-predicate cold latency
// on the pruned (zone map / secondary index) path vs the full-scan path.
func runLookup(prows int, jsonPath string) {
	cfg := bench.LookupConfig{Tuples: prows}
	rows, err := bench.LookupProfile(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	n := cfg.Tuples
	if n == 0 {
		n = 1_000_000
	}
	fmt.Printf("Selective lookup: %d rows, cold = dropped caches + modeled per-block read latency\n", n)
	fmt.Printf("%-12s %8s %10s %12s %8s %8s %10s\n",
		"case", "path", "rows", "cold ms", "zskip", "iskip", "speedup")
	for _, r := range rows {
		speedup := "-"
		if r.SpeedupVsFull > 0 {
			speedup = fmt.Sprintf("%.1fx", r.SpeedupVsFull)
		}
		fmt.Printf("%-12s %8s %10d %12.2f %8d %8d %10s\n",
			r.Case, r.Path, r.Rows, r.ColdNS/1e6, r.ZoneSkips, r.IndexSkips, speedup)
	}
	if jsonPath == "" {
		return
	}
	if err := mergeReportSections(jsonPath, map[string]any{"lookup": rows}); err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: writing %s: %v\n", jsonPath, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", jsonPath)
}

func runFig16(maxEntries, fanout int) {
	fmt.Printf("Figure 16: PDT maintenance cost vs size (fanout=%d)\n", fanout)
	fmt.Printf("%12s %14s %14s %14s\n", "entries", "insert ns/op", "modify ns/op", "delete ns/op")
	pts := bench.Fig16(bench.Fig16Config{MaxEntries: maxEntries, Samples: 20, Fanout: fanout})
	for _, p := range pts {
		fmt.Printf("%12d %14.0f %14.0f %14.0f\n", p.Size, p.InsertNS, p.ModifyNS, p.DeleteNS)
	}
}

var ratios = []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5}

func runFig17(n, blockRows int) {
	fmt.Printf("Figure 17: MergeScan, %d tuples, 4 data cols + 1 key col\n", n)
	fmt.Printf("%6s %8s %6s %14s %12s %10s\n", "keys", "upd/100", "mode", "scan ms (hot)", "IO MB", "rows")
	for _, strKeys := range []bool{false, true} {
		for _, ratio := range ratios {
			for _, mode := range []table.DeltaMode{table.ModePDT, table.ModeVDT} {
				cfg := bench.ScanConfig{
					Tuples: n, DataCols: 4, KeyCols: 1, StringKeys: strKeys,
					UpdatesPer100: ratio, Mode: mode, BlockRows: blockRows,
				}
				printScanRow(cfg)
			}
		}
	}
}

func runFig18(n, blockRows int) {
	fmt.Printf("Figure 18: MergeScan, %d tuples, 6 columns, 1-4 key columns\n", n)
	fmt.Printf("%6s %8s %8s %6s %14s %12s %10s\n", "keys", "keycols", "upd/100", "mode", "scan ms (hot)", "IO MB", "rows")
	for _, strKeys := range []bool{false, true} {
		for _, ratio := range ratios {
			for keyCols := 1; keyCols <= 4; keyCols++ {
				for _, mode := range []table.DeltaMode{table.ModePDT, table.ModeVDT} {
					cfg := bench.ScanConfig{
						Tuples: n, DataCols: 6 - keyCols, KeyCols: keyCols,
						StringKeys: strKeys, UpdatesPer100: ratio,
						Mode: mode, BlockRows: blockRows,
					}
					printScanRow18(cfg)
				}
			}
		}
	}
}

func keyType(strKeys bool) string {
	if strKeys {
		return "str"
	}
	return "int"
}

func printScanRow(cfg bench.ScanConfig) {
	r := measure(cfg)
	fmt.Printf("%6s %8.1f %6v %14.2f %12.2f %10d\n",
		keyType(cfg.StringKeys), cfg.UpdatesPer100, cfg.Mode,
		r.HotNS/1e6, float64(r.IOBytes)/1e6, r.Rows)
}

func printScanRow18(cfg bench.ScanConfig) {
	r := measure(cfg)
	fmt.Printf("%6s %8d %8.1f %6v %14.2f %12.2f %10d\n",
		keyType(cfg.StringKeys), cfg.KeyCols, cfg.UpdatesPer100, cfg.Mode,
		r.HotNS/1e6, float64(r.IOBytes)/1e6, r.Rows)
}

func measure(cfg bench.ScanConfig) bench.ScanResult {
	tbl, err := bench.BuildScanTable(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	r, err := bench.MeasureScan(tbl, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdtbench: %v\n", err)
		os.Exit(1)
	}
	return r
}
