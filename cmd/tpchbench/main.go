// Command tpchbench regenerates Figure 19: the 22 TPC-H queries under
// no-updates, VDT and PDT delta handling, after two refresh streams, on the
// paper's two platform profiles:
//
//	tpchbench -profile server       compressed storage, 3 GB/s (plots 1-2)
//	tpchbench -profile workstation  uncompressed, 150 MB/s (plots 3-5)
//
// Per query it prints hot (in-memory) time, I/O volume, modeled cold time,
// and both times normalized to the VDT run — the paper's bar heights.
package main

import (
	"flag"
	"fmt"
	"os"

	"pdtstore/internal/bench"
	"pdtstore/internal/table"
)

func main() {
	profile := flag.String("profile", "workstation", "server (compressed) or workstation (uncompressed)")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor (paper: 30 server / 10 workstation)")
	streams := flag.Int("streams", 2, "refresh stream pairs to apply")
	frac := flag.Float64("frac", 0.001, "fraction of orders touched per stream")
	flag.Parse()

	cfg := bench.TPCHConfig{SF: *sf, Streams: *streams, UpdateFrac: *frac, BlockRows: 8192}
	switch *profile {
	case "server":
		cfg.Compressed = true
		cfg.BandwidthMB = 3000
	case "workstation":
		cfg.Compressed = false
		cfg.BandwidthMB = 150
	default:
		fmt.Fprintf(os.Stderr, "tpchbench: unknown profile %q\n", *profile)
		os.Exit(2)
	}

	fmt.Printf("Figure 19 (%s): TPC-H SF-%g, compressed=%v, %d update streams, %.2f%% of orders each\n",
		*profile, *sf, cfg.Compressed, *streams, *frac*100)
	rows, err := bench.TPCH(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tpchbench: %v\n", err)
		os.Exit(1)
	}

	type cell struct {
		hot, cold float64
		io        uint64
	}
	byQuery := map[int]map[table.DeltaMode]cell{}
	for _, r := range rows {
		if byQuery[r.Query] == nil {
			byQuery[r.Query] = map[table.DeltaMode]cell{}
		}
		byQuery[r.Query][r.Mode] = cell{r.HotMS, r.ColdMS, r.IOBytes}
	}
	fmt.Printf("%4s | %9s %9s %9s | %9s %9s %9s | %8s %8s %8s | %6s %6s\n",
		"Q", "none hot", "VDT hot", "PDT hot",
		"none cold", "VDT cold", "PDT cold",
		"none MB", "VDT MB", "PDT MB", "hotN", "coldN")
	for q := 1; q <= 22; q++ {
		c := byQuery[q]
		n, v, p := c[table.ModeNone], c[table.ModeVDT], c[table.ModePDT]
		hotNorm, coldNorm := 0.0, 0.0
		if v.hot > 0 {
			hotNorm = p.hot / v.hot
		}
		if v.cold > 0 {
			coldNorm = p.cold / v.cold
		}
		fmt.Printf("%4d | %9.2f %9.2f %9.2f | %9.2f %9.2f %9.2f | %8.2f %8.2f %8.2f | %6.2f %6.2f\n",
			q, n.hot, v.hot, p.hot, n.cold, v.cold, p.cold,
			float64(n.io)/1e6, float64(v.io)/1e6, float64(p.io)/1e6,
			hotNorm, coldNorm)
	}
	fmt.Println("\nhotN/coldN = PDT time normalized to the VDT run (the paper's bar heights; <1 means PDT wins).")
}
