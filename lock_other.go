//go:build !unix

package pdtstore

import (
	"os"
	"path/filepath"
)

// lockEnforced reports whether lockDir actually excludes a second opener on
// this platform (tests gate their exclusivity assertions on it).
const lockEnforced = false

// Non-unix fallback: the LOCK file is created but not flock'd — single-opener
// discipline is the caller's responsibility on these platforms.
func lockDir(dir string) (*os.File, error) {
	return os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
}

func unlockDir(f *os.File) { f.Close() }
