package pdtstore

// Zone-map and secondary-index access paths over the durable store: the
// skip counters DB.Stats surfaces, the shared-checkpoint accounting
// invariant, index maintenance across all three checkpoint modes, and a
// randomized differential asserting that pruned scans (zone maps + indexes,
// serial and forced-parallel) stay byte-identical to unpruned full scans
// across shard counts and update histories with interleaved checkpoints.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"pdtstore/internal/engine"
	"pdtstore/internal/types"
	"pdtstore/internal/vector"
)

// openIndexDB opens dir with secondary indexes on the string and numeric
// payload columns (col 0, the sort key, is served by zone maps alone).
func openIndexDB(t *testing.T, dir string, shards int, cuts []types.Row) *DB {
	t.Helper()
	opts := Options{
		Schema: dbSchema, BlockRows: 64, Compressed: true,
		IndexColumns: []int{1, 2},
	}
	if shards > 1 {
		opts.Shards = shards
		opts.ShardKeys = cuts
	}
	db, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// dumpBatch renders a collected batch row by row — the byte-identical
// comparison currency of the differential tests.
func dumpBatch(b *vector.Batch) string {
	var sb strings.Builder
	for i := 0; i < b.Len(); i++ {
		r := b.Row(i)
		if i < len(b.Rids) {
			fmt.Fprintf(&sb, "@%d ", b.Rids[i])
		}
		for j, v := range r {
			if j > 0 {
				sb.WriteByte('|')
			}
			fmt.Fprintf(&sb, "%v", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestSharedCheckpointStatsAccounting: a "shared" (no-write) checkpoint
// re-references the previous chain, so Stats must report exactly the same
// per-segment live/total block counts before and after it, and the live
// counts must still sum to the image's logical cell count.
func TestSharedCheckpointStatsAccounting(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openTestDB(t, dir)
	defer db.Close()
	commitInserts(t, db, m, 0, 640)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commitUpdates(t, db, m, 3, 70)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := db.Stats().Shard[0]
	if before.LastDecision.Mode != "incremental" || len(before.Segments) != 2 {
		t.Fatalf("setup: want a 2-member incremental chain, got %+v", before)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := db.Stats().Shard[0]
	if after.LastDecision.Mode != "shared" {
		t.Fatalf("no-write checkpoint mode = %q, want shared", after.LastDecision.Mode)
	}
	if len(after.Segments) != len(before.Segments) {
		t.Fatalf("shared checkpoint changed chain length: %d -> %d", len(before.Segments), len(after.Segments))
	}
	live := 0
	for j, seg := range after.Segments {
		if seg != before.Segments[j] {
			t.Fatalf("segment %d accounting drifted across shared checkpoint:\nbefore %+v\nafter  %+v", j, before.Segments[j], seg)
		}
		if seg.LiveBlocks > seg.TotalBlocks {
			t.Fatalf("segment %d reports %d live of %d total blocks", j, seg.LiveBlocks, seg.TotalBlocks)
		}
		live += seg.LiveBlocks
	}
	// Every logical (column, block) cell resolves to exactly one chain member.
	cells := dbSchema.NumCols() * (640 / 64)
	if live != cells {
		t.Fatalf("live blocks sum to %d across the chain, want %d", live, cells)
	}
	checkState(t, db, m)
}

// TestOpenRejectsFloatIndexColumn: Float64 columns cannot be indexed and the
// request must fail at Open, not at first checkpoint.
func TestOpenRejectsFloatIndexColumn(t *testing.T) {
	schema := types.MustSchema([]types.Column{
		{Name: "k", Kind: types.Int64},
		{Name: "x", Kind: types.Float64},
	}, []int{0})
	_, err := Open(t.TempDir(), Options{Schema: schema, IndexColumns: []int{1}})
	if err == nil || !strings.Contains(err.Error(), "Float64") {
		t.Fatalf("Open with a Float64 index column: err = %v, want rejection", err)
	}
	if _, err := Open(t.TempDir(), Options{Schema: schema, IndexColumns: []int{7}}); err == nil {
		t.Fatal("Open with an out-of-range index column succeeded")
	}
}

// TestSkipCountersEndToEnd: a clustered range predicate skips blocks via zone
// maps, an equality probe on the scattered string column skips via the
// secondary index (its zones are too wide to help), and both show up in
// DB.Stats — while every pruned scan returns exactly what the unpruned scan
// does.
func TestSkipCountersEndToEnd(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openIndexDB(t, dir, 1, nil)
	defer db.Close()
	commitInserts(t, db, m, 0, 640)
	if err := db.Checkpoint(); err != nil { // stable image: 10 blocks of 64
		t.Fatal(err)
	}

	scan := func(mk func() *engine.Plan) (pruned, full string) {
		t.Helper()
		tx := db.Begin()
		defer tx.Abort()
		pb, err := mk().Collect()
		if err != nil {
			t.Fatal(err)
		}
		fb, err := mk().NoPrune().Collect()
		if err != nil {
			t.Fatal(err)
		}
		return dumpBatch(pb), dumpBatch(fb)
	}

	z0, _ := db.Stats().ZoneSkippedBlocks, db.Stats().IndexSkippedBlocks
	tx := db.Begin()
	p, err := engine.Scan(tx, 0, 1, 2).FilterInt64Range(0, 200, 210).Collect()
	if err != nil {
		t.Fatal(err)
	}
	f, err := engine.Scan(tx, 0, 1, 2).FilterInt64Range(0, 200, 210).NoPrune().Collect()
	tx.Abort()
	if err != nil {
		t.Fatal(err)
	}
	if dumpBatch(p) != dumpBatch(f) || p.Len() != 11 {
		t.Fatalf("zone-pruned range scan differs from full scan (%d rows)", p.Len())
	}
	st := db.Stats()
	if st.ZoneSkippedBlocks <= z0 {
		t.Fatalf("clustered range scan skipped no blocks via zone maps: %+v", st)
	}

	// "v300" defeats the string zones (block 0 spans [v0, v9], which straddles
	// it) but not the exact per-block value sets of the secondary index.
	i0 := db.Stats().IndexSkippedBlocks
	pr, fu := scan(func() *engine.Plan {
		tx := db.Begin()
		t.Cleanup(func() { tx.Abort() })
		return engine.Scan(tx, 0, 1, 2).FilterStrEq(1, "v300")
	})
	if pr != fu || !strings.Contains(pr, "v300") {
		t.Fatalf("index-pruned equality scan differs from full scan:\npruned:\n%s\nfull:\n%s", pr, fu)
	}
	if db.Stats().IndexSkippedBlocks <= i0 {
		t.Fatalf("string equality scan skipped no blocks via the index: %+v", db.Stats())
	}

	// SetPruning(false) is the global kill switch: no scan may skip anything.
	engine.SetPruning(false)
	zb, ib := db.Stats().ZoneSkippedBlocks, db.Stats().IndexSkippedBlocks
	pr2, fu2 := scan(func() *engine.Plan {
		tx := db.Begin()
		t.Cleanup(func() { tx.Abort() })
		return engine.Scan(tx, 0, 1, 2).FilterStrEq(1, "v300")
	})
	engine.SetPruning(true)
	if pr2 != fu2 {
		t.Fatal("scans differ with pruning globally disabled")
	}
	if st := db.Stats(); st.ZoneSkippedBlocks != zb || st.IndexSkippedBlocks != ib {
		t.Fatalf("SetPruning(false) still skipped blocks: %+v", st)
	}
}

// TestIndexSurvivesCheckpointModes: the index set must stay attached — and
// correct — through all three checkpoint modes (shared, incremental, full)
// and a cold reopen, which rebuilds it from the image.
func TestIndexSurvivesCheckpointModes(t *testing.T) {
	dir := t.TempDir()
	m := model{}
	db := openIndexDB(t, dir, 1, nil)
	commitInserts(t, db, m, 0, 640)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	probe := func(db *DB, wantMode string) {
		t.Helper()
		if wantMode != "" {
			if got := db.Stats().Shard[0].LastDecision.Mode; got != wantMode {
				t.Fatalf("checkpoint mode = %q, want %q", got, wantMode)
			}
		}
		i0 := db.Stats().IndexSkippedBlocks
		tx := db.Begin()
		defer tx.Abort()
		p, err := engine.Scan(tx, 0, 1, 2).FilterStrEq(1, "v300").Collect()
		if err != nil {
			t.Fatal(err)
		}
		f, err := engine.Scan(tx, 0, 1, 2).FilterStrEq(1, "v300").NoPrune().Collect()
		if err != nil {
			t.Fatal(err)
		}
		if dumpBatch(p) != dumpBatch(f) {
			t.Fatalf("pruned scan differs after %q checkpoint", wantMode)
		}
		if db.Stats().IndexSkippedBlocks <= i0 {
			t.Fatalf("index inactive after %q checkpoint", wantMode)
		}
	}
	probe(db, "full")

	// Shared: nothing to absorb, CloneShared must carry the set verbatim.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	probe(db, "shared")

	// Incremental: modify-only delta, Rebuild reuses clean summaries and
	// rebuilds the dirty ones (col 2 blocks 0 and 1).
	commitUpdates(t, db, m, 3, 70)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	probe(db, "incremental")
	// The rebuilt summaries must answer for the new values: key 3's n column
	// is now -3, and an equality probe for it must agree with the full scan.
	tx := db.Begin()
	p, err := engine.Scan(tx, 0, 2).FilterInt64Eq(2, -3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	f, err := engine.Scan(tx, 0, 2).FilterInt64Eq(2, -3).NoPrune().Collect()
	tx.Abort()
	if err != nil {
		t.Fatal(err)
	}
	if dumpBatch(p) != dumpBatch(f) || p.Len() != 1 {
		t.Fatalf("post-incremental index probe wrong: pruned %d rows\n%s\nfull:\n%s", p.Len(), dumpBatch(p), dumpBatch(f))
	}

	// Full: a shifting delta collapses the chain; Build runs afresh.
	commitMixed(t, db, m, 0, 10)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	probe(db, "full")
	checkState(t, db, m)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold reopen rebuilds the set from the image.
	db2 := openIndexDB(t, dir, 1, nil)
	defer db2.Close()
	probe(db2, "")
	checkState(t, db2, m)
}

// indexTestCuts split the [0, 1000) key domain for up to 8 shards.
var indexTestCuts = []types.Row{
	{types.Int(125)}, {types.Int(250)}, {types.Int(375)}, {types.Int(500)},
	{types.Int(625)}, {types.Int(750)}, {types.Int(875)},
}

// TestPrunedScanDifferential drives a randomized update history — inserts,
// in-place updates, deletes, checkpoints interleaved — at 1, 2, 4 and 8
// shards, and after every step requires a panel of selective scans (zone-map
// ranges, index equality and membership probes, combined predicates; serial
// and forced-parallel) to be byte-identical to the same scans with pruning
// off.
func TestPrunedScanDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + shards)))
			dir := t.TempDir()
			m := model{}
			var cuts []types.Row
			if shards > 1 {
				switch shards {
				case 2:
					cuts = []types.Row{indexTestCuts[3]}
				case 4:
					cuts = []types.Row{indexTestCuts[1], indexTestCuts[3], indexTestCuts[5]}
				case 8:
					cuts = indexTestCuts
				}
			}
			db := openIndexDB(t, dir, shards, cuts)
			defer db.Close()

			check := func(step string) {
				t.Helper()
				tx := db.Begin()
				defer tx.Abort()
				plans := map[string]func() *engine.Plan{
					"zone-range":  func() *engine.Plan { return engine.Scan(tx, 0, 1, 2).FilterInt64Range(0, 180, 260) },
					"zone-narrow": func() *engine.Plan { return engine.Scan(tx, 0, 1, 2).FilterInt64Range(0, 501, 505) },
					"idx-streq":   func() *engine.Plan { return engine.Scan(tx, 0, 1, 2).FilterStrEq(1, "v300") },
					"idx-strin":   func() *engine.Plan { return engine.Scan(tx, 0, 1).FilterStrIn(1, "v7", "v311", "v888") },
					"idx-prefix":  func() *engine.Plan { return engine.Scan(tx, 0, 1).FilterStrPrefix(1, "v31") },
					"idx-inteq":   func() *engine.Plan { return engine.Scan(tx, 0, 2).FilterInt64Eq(2, 3120) },
					"combined": func() *engine.Plan {
						return engine.Scan(tx, 0, 1, 2).FilterInt64Range(0, 100, 700).FilterStrPrefix(1, "v4")
					},
				}
				for name, mk := range plans {
					full, err := mk().NoPrune().WithRids().Collect()
					if err != nil {
						t.Fatalf("%s: %s full scan: %v", step, name, err)
					}
					want := dumpBatch(full)
					pruned, err := mk().WithRids().Collect()
					if err != nil {
						t.Fatalf("%s: %s pruned scan: %v", step, name, err)
					}
					if got := dumpBatch(pruned); got != want {
						t.Fatalf("%s: %s pruned scan differs from full scan\npruned:\n%s\nfull:\n%s", step, name, got, want)
					}
					par, err := mk().WithRids().Parallel(4).BatchSize(32).Collect()
					if err != nil {
						t.Fatalf("%s: %s parallel pruned scan: %v", step, name, err)
					}
					if got := dumpBatch(par); got != want {
						t.Fatalf("%s: %s parallel pruned scan differs from full scan\nparallel:\n%s\nfull:\n%s", step, name, got, want)
					}
				}
			}

			// Seed: a committed, checkpointed base of 640 rows over [0, 1000).
			var keys []int64
			for len(m) < 640 {
				k := int64(rng.Intn(1000))
				if _, ok := m[k]; ok {
					continue
				}
				sCommitInserts(t, db, m, k)
				keys = append(keys, k)
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			check("seed")

			for step := 0; step < 8; step++ {
				switch rng.Intn(3) {
				case 0: // scattered inserts (possibly cross-shard)
					var batch []int64
					seen := map[int64]bool{}
					for i := 0; i < 20; i++ {
						k := int64(rng.Intn(1000))
						if _, ok := m[k]; !ok && !seen[k] {
							batch = append(batch, k)
							seen[k] = true
						}
					}
					if len(batch) > 0 {
						sCommitInserts(t, db, m, batch...)
					}
				case 1: // in-place updates
					var batch []int64
					for _, k := range keys {
						if _, ok := m[k]; ok && rng.Intn(10) == 0 {
							batch = append(batch, k)
						}
					}
					if len(batch) > 0 {
						commitUpdates(t, db, m, batch...)
					}
				case 2: // mixed updates and deletes over a key stripe
					lo := int64(rng.Intn(900))
					commitMixed(t, db, m, lo, lo+60)
				}
				if rng.Intn(2) == 0 {
					if err := db.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				}
				check(fmt.Sprintf("step %d", step))
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			check("final")
			sCheckState(t, db, m)
		})
	}
}
