package pdtstore

// Incremental, cost-based checkpoints. A checkpoint no longer has to rewrite
// the whole stable image: the PDT's positional entries name the exact dirty
// blocks (table.ComputeDirty), so generation N+1 can be a small delta segment
// that stores only the changed blocks and a block map referencing the rest
// from earlier generations. The manifest then pins a per-shard segment
// *chain*; fully superseded members drop out of the chain at the next
// checkpoint and are unlinked after the manifest swap.
//
// The checkpoint itself picks the cheapest safe mode per shard:
//
//	shared       empty delta — re-reference the current chain, bump the
//	             freeze LSN, write no segment at all
//	incremental  dirty cells < half the image and the chain stays within
//	             Checkpoint.MaxGenerations
//	full         everything else — rewrites one flat segment, collapsing
//	             the chain (bounds scan fan-out and read amplification)
//
// CheckpointOptions.Auto adds a background scheduler that weighs the modeled
// cold-open replay cost of each shard's WAL tail against the modeled cost of
// checkpointing it now, and checkpoints the shard when replay gets more
// expensive — continuous checkpointing keeps reopen latency bounded no matter
// how long the store runs between restarts.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pdtstore/internal/colstore"
	"pdtstore/internal/index"
	"pdtstore/internal/pdt"
	"pdtstore/internal/storage"
	"pdtstore/internal/table"
)

// Default checkpoint policy values, substituted for zero fields by Open.
const (
	// DefaultMaxGenerations bounds a segment chain's length; reaching it
	// forces a full rewrite that collapses the chain.
	DefaultMaxGenerations = 8
	// DefaultCheckpointInterval is the scheduler's decision cadence.
	DefaultCheckpointInterval = 25 * time.Millisecond
	// DefaultMaxWALRecords force-checkpoints a shard whose tail grew this
	// long regardless of the cost model.
	DefaultMaxWALRecords = 1024
	// Cost-model weights, in microseconds: replaying one WAL record at open,
	// writing one (column, block) cell, and one manifest swap + fsync.
	DefaultReplayCostUs     = 300.0
	DefaultBlockWriteCostUs = 40.0
	DefaultSwapCostUs       = 2000.0
)

// CheckpointOptions tunes the incremental checkpoint machinery and its
// background scheduler. The zero value means: incremental checkpoints
// enabled, chains up to DefaultMaxGenerations, no background scheduler.
type CheckpointOptions struct {
	// FullOnly disables incremental checkpoints: every checkpoint rewrites
	// the full image into a single flat segment (the pre-chain behavior).
	FullOnly bool
	// MaxGenerations caps the segment chain length per shard; a checkpoint
	// that would exceed it rewrites in full instead (0 = default). Must be
	// at least 1.
	MaxGenerations int
	// Auto runs a background scheduler that checkpoints a shard when the
	// cost model says its WAL tail's replay cost exceeds the checkpoint's
	// write cost, or the tail exceeds MaxWALRecords.
	Auto bool
	// Interval is the scheduler's decision cadence (0 = default).
	Interval time.Duration
	// MaxWALRecords force-checkpoints a shard whose tail reached this many
	// commit-clock entries (0 = default).
	MaxWALRecords int
	// Cost-model weights, microseconds per unit (0 = defaults): one WAL
	// record replayed at open, one (column, block) cell written, one
	// manifest swap.
	ReplayCostUs     float64
	BlockWriteCostUs float64
	SwapCostUs       float64
}

// normalize substitutes defaults for zero fields and rejects nonsense.
func (o CheckpointOptions) normalize() (CheckpointOptions, error) {
	if o.MaxGenerations == 0 {
		o.MaxGenerations = DefaultMaxGenerations
	}
	if o.Interval == 0 {
		o.Interval = DefaultCheckpointInterval
	}
	if o.MaxWALRecords == 0 {
		o.MaxWALRecords = DefaultMaxWALRecords
	}
	if o.ReplayCostUs == 0 {
		o.ReplayCostUs = DefaultReplayCostUs
	}
	if o.BlockWriteCostUs == 0 {
		o.BlockWriteCostUs = DefaultBlockWriteCostUs
	}
	if o.SwapCostUs == 0 {
		o.SwapCostUs = DefaultSwapCostUs
	}
	if o.MaxGenerations < 1 {
		return o, fmt.Errorf("pdtstore: Checkpoint.MaxGenerations < 1 (%d)", o.MaxGenerations)
	}
	if o.Interval < 0 {
		return o, fmt.Errorf("pdtstore: negative Checkpoint.Interval (%v)", o.Interval)
	}
	if o.MaxWALRecords < 1 {
		return o, fmt.Errorf("pdtstore: Checkpoint.MaxWALRecords < 1 (%d)", o.MaxWALRecords)
	}
	if o.ReplayCostUs < 0 || o.BlockWriteCostUs < 0 || o.SwapCostUs < 0 {
		return o, fmt.Errorf("pdtstore: negative Checkpoint cost weight")
	}
	return o, nil
}

// CheckpointDecision records the cost-model inputs and outcome of one
// checkpoint decision for a shard, surfaced through Stats.
type CheckpointDecision struct {
	// TailRecords is the shard's commit-clock distance past its freeze bar.
	TailRecords uint64
	// DirtyBlocks is the (column, block) cell count the decision would write
	// — measured exactly inside a checkpoint, estimated from the PDT layer
	// counts in the scheduler.
	DirtyBlocks int
	// TotalBlocks is what a full rewrite writes.
	TotalBlocks int
	// ReplayUs and WriteUs are the modeled cold-open replay cost of the tail
	// and the modeled checkpoint cost.
	ReplayUs float64
	WriteUs  float64
	// Mode is what happened: "skip", "shared", "incremental" or "full"
	// ("" before any decision ran).
	Mode string
}

// Checkpoint makes the online checkpoint durable: each shard's committed
// state lands in generation N+1 — a full flat segment, a delta segment
// holding only the dirty blocks plus a block map referencing the rest from
// the prior chain, or (for an empty delta) no segment at all — the MANIFEST
// swaps to the new chains (the commit point), and each WAL stream drops every
// record its shard's image now contains. Commits keep flowing throughout —
// they land in a side delta layer and stay in the log until the next
// checkpoint. A sharded store streams its shards' images one at a time (each
// shard's checkpoint is online independently) and commits them all with the
// single manifest swap before truncating each stream below its own bar.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.checkpointLocked(nil)
}

// checkpointLocked runs the checkpoint sequence for the selected shards (nil
// = all) under db.mu; unselected shards keep their manifest entry unchanged.
func (db *DB) checkpointLocked(only []bool) error {
	if db.closed {
		return fmt.Errorf("pdtstore: checkpoint on closed DB")
	}
	db.nextGen++
	gen := db.nextGen
	n := len(db.mgrs)
	names := make([]string, n)
	freeze := make([]uint64, n)
	chains := make([][]string, n)
	for i := range names {
		if db.sharded == nil {
			names[i] = segmentName(gen)
		} else {
			names[i] = shardSegmentName(gen, i)
		}
	}
	first := true
	for i := range db.mgrs {
		if only != nil && !only[i] {
			// Untouched shard: carry the previous chain and freeze bar.
			freeze[i] = db.shardFreezeLSN(i)
			chains[i] = db.shardChain(i)
			continue
		}
		if !first {
			if err := db.injectFault(faultBetweenShardCheckpoints); err != nil {
				return err
			}
		}
		first = false
		i := i
		prevFreeze := db.shardFreezeLSN(i)
		var retired *colstore.Store
		err := db.mgrs[i].CheckpointInto(func(lsn uint64, store *colstore.Store, deltas ...*pdt.PDT) (*colstore.Store, error) {
			freeze[i] = lsn
			retired = store
			ns, err := db.buildShardImage(i, names[i], lsn-prevFreeze, store, deltas)
			if err != nil {
				return nil, err
			}
			chains[i] = storeChainNames(ns)
			return ns, nil
		})
		if err != nil {
			return err
		}
		// The manager has installed the new image: the base store is
		// superseded in memory from here on, whatever happens to the
		// manifest below. Chain members it shares with the new image stay
		// open — segment descriptors are refcounted.
		if retired != nil {
			db.retired = append(db.retired, retired)
		}
	}
	if err := db.injectFault(faultPreManifestSwap); err != nil {
		return err
	}
	mixed := false
	for _, c := range chains {
		if len(c) > 1 {
			mixed = true
		}
	}
	if mixed {
		if err := db.injectFault(faultPreSwapMixedGen); err != nil {
			return err
		}
	}
	prev := db.man
	var man storage.Manifest
	if db.sharded == nil {
		man = storage.Manifest{Generation: gen, Segment: chains[0][len(chains[0])-1], Segments: chains[0], LSN: freeze[0]}
	} else {
		entries := make([]storage.ShardEntry, n)
		for i := range entries {
			entries[i] = storage.ShardEntry{Segment: chains[i][len(chains[i])-1], Segments: chains[i], LSN: freeze[i]}
		}
		man = storage.Manifest{Generation: gen, Shards: entries, Splits: prev.Splits}
	}
	if err := storage.WriteManifest(db.dir, man); err != nil {
		return err
	}
	db.man = man
	if err := db.injectFault(faultPostSwapPreGC); err != nil {
		return err
	}
	// Unlink the superseded segments' directory entries. Pinned readers keep
	// their open descriptor (POSIX keeps the data alive until Close releases
	// it); recovery never needs a non-manifest segment.
	keep := manifestSegments(man)
	for old := range manifestSegments(prev) {
		if !keep[old] {
			os.Remove(filepath.Join(db.dir, old))
		}
	}
	if err := db.injectFault(faultPostSwapPreTruncate); err != nil {
		return err
	}
	// Past the swap the checkpoint is already durable; truncation is space
	// reclamation (recovery filters by the manifest LSNs either way).
	for i, l := range db.logs {
		if err := l.TruncateBelow(freeze[i]); err != nil {
			return err
		}
	}
	return nil
}

// buildShardImage materializes shard i's next stable image under the mode the
// cost rules pick, records the decision in lastCost, and returns the new
// store (whose segment chain the manifest entry will name).
func (db *DB) buildShardImage(i int, name string, tail uint64, store *colstore.Store, deltas []*pdt.PDT) (*colstore.Store, error) {
	path := filepath.Join(db.dir, name)
	full := db.ckpt.FullOnly || store.Segments() == nil
	var ds *table.DirtySet
	if !full {
		var err error
		ds, err = db.tbls[i].ComputeDirty(store, deltas...)
		if err != nil {
			return nil, err
		}
		switch {
		case ds.Empty:
			// Nothing changed since the last checkpoint: re-reference the
			// current chain under the new freeze LSN; no segment is written.
			db.lastCost[i] = CheckpointDecision{
				TailRecords: tail, TotalBlocks: ds.TotalCells(), Mode: "shared",
			}
			return store.CloneShared(), nil
		case len(store.Segments())+1 > db.ckpt.MaxGenerations,
			2*ds.WriteCells() >= ds.TotalCells():
			full = true
		}
	}
	if full {
		b, err := colstore.NewFileBuilder(db.schema, db.dev, db.opts.BlockRows, db.opts.Compressed, path)
		if err != nil {
			return nil, err
		}
		if err := db.tbls[i].MaterializeStream(b, store, deltas...); err != nil {
			b.Abort()
			return nil, err
		}
		if err := db.injectFault(faultMidSegmentWrite); err != nil {
			return nil, err // crash sim: partial file stays, no footer
		}
		ns, err := b.Finish() // footer + fsync: image durable past here
		if err != nil {
			return nil, err
		}
		if err := db.reindex(ns, nil, nil); err != nil {
			return nil, err
		}
		d := CheckpointDecision{TailRecords: tail, Mode: "full"}
		if ds != nil {
			d.DirtyBlocks = ds.WriteCells()
			d.TotalBlocks = ds.TotalCells()
		} else {
			d.TotalBlocks = ns.NumBlocks() * db.schema.NumCols()
			d.DirtyBlocks = d.TotalBlocks
		}
		d.ReplayUs = float64(tail) * db.ckpt.ReplayCostUs
		d.WriteUs = float64(d.TotalBlocks)*db.ckpt.BlockWriteCostUs + db.ckpt.SwapCostUs
		db.lastCost[i] = d
		return ns, nil
	}
	b, err := colstore.NewDeltaBuilder(store, path, ds.NewRows, ds.ShiftBlk)
	if err != nil {
		return nil, err
	}
	if err := db.tbls[i].MaterializeDelta(b, store, ds, deltas...); err != nil {
		b.Abort()
		return nil, err
	}
	if err := db.injectFault(faultMidSegmentWrite); err != nil {
		return nil, err // crash sim: partial delta file stays, no block map
	}
	if err := db.injectFault(faultMidBlockMapWrite); err != nil {
		return nil, err // crash sim: dirty blocks on disk, footer/map missing
	}
	ns, err := b.Finish()
	if err != nil {
		return nil, err
	}
	if err := db.reindex(ns, store, ds); err != nil {
		return nil, err
	}
	db.lastCost[i] = CheckpointDecision{
		TailRecords: tail,
		DirtyBlocks: ds.WriteCells(),
		TotalBlocks: ds.TotalCells(),
		ReplayUs:    float64(tail) * db.ckpt.ReplayCostUs,
		WriteUs:     float64(ds.WriteCells())*db.ckpt.BlockWriteCostUs + db.ckpt.SwapCostUs,
		Mode:        "incremental",
	}
	return ns, nil
}

// reindex attaches the next image's secondary-index set, if Options asked for
// one: a fresh Build after a full rewrite (prev == nil), or an incremental
// Rebuild that reuses every summary of the previous image's set whose block
// the checkpoint's dirty map left untouched. Blocks at or past the dirty
// set's first position shift are always rebuilt — the delta image rewrote
// them. The "shared" (no-write) mode needs no call: CloneShared carries the
// aux sidecar, and with it the index, verbatim.
func (db *DB) reindex(ns *colstore.Store, prev *colstore.Store, ds *table.DirtySet) error {
	if len(db.opts.IndexColumns) == 0 {
		return nil
	}
	if prev != nil && ds != nil {
		if old, ok := prev.Aux().(*index.Set); ok {
			idx, err := old.Rebuild(ns, ns.NumBlocks(), func(col, blk int) bool {
				return blk >= ds.ShiftBlk ||
					(col < len(ds.Dirty) && blk < len(ds.Dirty[col]) && ds.Dirty[col][blk])
			})
			if err != nil {
				return err
			}
			ns.SetAux(idx)
			return nil
		}
	}
	idx, err := index.Build(ns, db.opts.IndexColumns)
	if err != nil {
		return err
	}
	ns.SetAux(idx)
	return nil
}

// shardFreezeLSN reads shard i's current manifest freeze bar under db.mu.
func (db *DB) shardFreezeLSN(i int) uint64 {
	if len(db.man.Shards) > 0 {
		return db.man.Shards[i].LSN
	}
	return db.man.LSN
}

// shardChain reads shard i's current manifest segment chain under db.mu.
func (db *DB) shardChain(i int) []string {
	if len(db.man.Shards) > 0 {
		return db.man.Shards[i].Chain()
	}
	return db.man.Chain()
}

// storeChainNames maps a store's segment chain to manifest file names.
func storeChainNames(s *colstore.Store) []string {
	segs := s.Segments()
	names := make([]string, len(segs))
	for i, seg := range segs {
		names[i] = filepath.Base(seg.Path())
	}
	return names
}

// decideShard runs the scheduler's cost model for shard i under db.mu: is
// replaying the shard's WAL tail at the next open modeled to cost more than
// checkpointing it now? The dirty estimate comes from the live PDT layer
// counts — each in-place modify dirties about one cell, and any insert or
// delete shifts the image's tail, costed as half the image.
func (db *DB) decideShard(i int) CheckpointDecision {
	tail := db.mgrs[i].LSN() - db.shardFreezeLSN(i)
	total := db.tbls[i].Store().NumBlocks() * db.schema.NumCols()
	d := CheckpointDecision{TailRecords: tail, TotalBlocks: total, Mode: "skip"}
	if tail == 0 {
		return d
	}
	ins, del, mod := db.mgrs[i].DeltaCounts()
	est := mod
	if ins+del > 0 {
		est += total / 2
	}
	if est > total {
		est = total
	}
	if est < 1 {
		est = 1
	}
	d.DirtyBlocks = est
	d.ReplayUs = float64(tail) * db.ckpt.ReplayCostUs
	d.WriteUs = float64(est)*db.ckpt.BlockWriteCostUs + db.ckpt.SwapCostUs
	if int(tail) >= db.ckpt.MaxWALRecords || d.ReplayUs > d.WriteUs {
		d.Mode = "checkpoint"
	}
	return d
}

// schedulerLoop is the background checkpoint scheduler (Checkpoint.Auto).
func (db *DB) schedulerLoop() {
	defer close(db.schedDone)
	t := time.NewTicker(db.ckpt.Interval)
	defer t.Stop()
	for {
		select {
		case <-db.schedStop:
			return
		case <-t.C:
			db.autoCheckpoint()
		}
	}
}

// autoCheckpoint evaluates every shard and checkpoints the ones whose tail
// replay cost exceeds their checkpoint cost. The first failure is sticky and
// surfaces from Close (and Stats); the loop keeps running so later ticks can
// retry — a failed attempt leaves the previous manifest fully intact.
func (db *DB) autoCheckpoint() {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return
	}
	want := make([]bool, len(db.mgrs))
	any := false
	for i := range db.mgrs {
		d := db.decideShard(i)
		if d.Mode != "checkpoint" {
			db.lastCost[i] = d
			continue
		}
		want[i] = true
		any = true
	}
	if !any {
		return
	}
	if err := db.checkpointLocked(want); err != nil && db.schedErr == nil {
		db.schedErr = err
	}
}

// stopScheduler shuts the background scheduler down, at most once, without
// holding db.mu (the scheduler's ticks take db.mu themselves).
func (db *DB) stopScheduler() {
	db.schedOnce.Do(func() {
		if db.schedStop != nil {
			close(db.schedStop)
			<-db.schedDone
		}
	})
}
